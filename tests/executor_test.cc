#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/executor.h"
#include "runtime/realtime_executor.h"
#include "runtime/sim_executor.h"

/// Conformance suite for the Executor contract (executor.h), run against
/// both backends. Everything asserted here is backend-independent: FIFO
/// within one queue at equal deadlines, past-deadline clamping, re-entrant
/// scheduling, and Drain covering future timers and nested work. Ordering
/// ACROSS queues at equal deadlines is deliberately not asserted — the
/// contract leaves it unspecified under RealtimeExecutor.

namespace rhino::runtime {
namespace {

enum class Backend { kSim, kRealtime };

std::string BackendName(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "Realtime";
}

class ExecutorConformanceTest : public ::testing::TestWithParam<Backend> {
 protected:
  ExecutorConformanceTest() {
    if (GetParam() == Backend::kSim) {
      executor_ = std::make_unique<SimExecutor>();
    } else {
      executor_ = std::make_unique<RealtimeExecutor>(4);
    }
  }

  Executor& exec() { return *executor_; }

  std::unique_ptr<Executor> executor_;
};

TEST_P(ExecutorConformanceTest, NowStartsAtZeroAndIsMonotonic) {
  SimTime first = exec().Now();
  EXPECT_GE(first, 0);
  exec().Schedule(1000, [] {});
  exec().Drain();
  EXPECT_GE(exec().Now(), first);
}

TEST_P(ExecutorConformanceTest, SameDeadlineTasksOnOneQueueRunFifo) {
  TaskQueue* q = exec().CreateQueue("strand");
  std::vector<int> order;
  SimTime when = exec().Now() + 2000;
  for (int i = 1; i <= 5; ++i) {
    q->PostAt(when, [&order, i] { order.push_back(i); });
  }
  exec().Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_P(ExecutorConformanceTest, DefaultQueueSerializesSchedules) {
  // Schedule/ScheduleAt target one serial queue, so equal delays keep
  // submission order even on the multi-threaded backend.
  std::vector<int> order;
  for (int i = 1; i <= 5; ++i) {
    exec().Schedule(1000, [&order, i] { order.push_back(i); });
  }
  exec().Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_P(ExecutorConformanceTest, EarlierDeadlineRunsFirstOnOneQueue) {
  TaskQueue* q = exec().CreateQueue("strand");
  std::vector<int> order;
  SimTime base = exec().Now();
  q->PostAt(base + 20000, [&order] { order.push_back(2); });
  q->PostAt(base + 10000, [&order] { order.push_back(1); });
  exec().Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(ExecutorConformanceTest, PastDeadlineClampsToNowAndCounts) {
  // Advance the clock off zero first so a "past" deadline exists.
  exec().Schedule(2000, [] {});
  exec().Drain();
  EXPECT_EQ(exec().clamped_schedules(), 0u);

  bool ran = false;
  exec().ScheduleAt(exec().Now() - 1000, [&ran] { ran = true; });
  exec().Drain();
  EXPECT_TRUE(ran) << "clamped tasks still run";
  EXPECT_GE(exec().clamped_schedules(), 1u);
}

TEST_P(ExecutorConformanceTest, CallbacksMayReenterSchedule) {
  std::atomic<int> fired{0};
  Executor* e = &exec();
  TaskQueue* q = e->CreateQueue("strand");
  e->Schedule(0, [&fired, e, q] {
    ++fired;
    e->Schedule(0, [&fired] { ++fired; });  // own queue, re-entrant
    q->Post([&fired] { ++fired; });         // another queue
  });
  exec().Drain();
  EXPECT_EQ(fired.load(), 3);
}

TEST_P(ExecutorConformanceTest, DrainWaitsForFutureTimers) {
  bool ran = false;
  exec().Schedule(20000, [&ran] { ran = true; });  // 20 ms out
  exec().Drain();
  EXPECT_TRUE(ran) << "Drain must include timers scheduled in the future";
}

TEST_P(ExecutorConformanceTest, DrainWaitsForNestedChains) {
  // A chain of tasks, each scheduling the next: Drain must follow the
  // whole chain, not just the tasks queued when it was called.
  std::atomic<int> depth{0};
  Executor* e = &exec();
  std::function<void()> step = [&depth, e, &step] {
    if (++depth < 10) e->Schedule(100, step);
  };
  e->Schedule(0, step);
  exec().Drain();
  EXPECT_EQ(depth.load(), 10);
}

TEST_P(ExecutorConformanceTest, QueuesDoNotStarveEachOther) {
  TaskQueue* a = exec().CreateQueue("a");
  TaskQueue* b = exec().CreateQueue("b");
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    a->Post([&ran] { ++ran; });
    b->Post([&ran] { ++ran; });
  }
  exec().Drain();
  EXPECT_EQ(ran.load(), 200);
}

TEST_P(ExecutorConformanceTest, RunUntilAdvancesTheClock) {
  std::atomic<bool> ran{false};
  exec().Schedule(1000, [&ran] { ran = true; });
  exec().RunUntil(exec().Now() + 5000);
  exec().Drain();  // realtime RunUntil does not imply quiescence
  EXPECT_TRUE(ran.load());
  EXPECT_GE(exec().Now(), 5000);
}

INSTANTIATE_TEST_SUITE_P(Backends, ExecutorConformanceTest,
                         ::testing::Values(Backend::kSim, Backend::kRealtime),
                         BackendName);

// ---- Backend-specific guarantees -----------------------------------------

TEST(SimExecutorTest, CrossQueueOrderIsGlobalSubmissionOrder) {
  // The sim backend refines the contract: equal-deadline tasks interleave
  // in exact submission order even across queues (one kernel, one
  // sequence counter) — this is what keeps ported experiments bit-exact.
  SimExecutor exec;
  TaskQueue* a = exec.CreateQueue("a");
  TaskQueue* b = exec.CreateQueue("b");
  std::vector<int> order;
  a->PostAt(10, [&order] { order.push_back(1); });
  b->PostAt(10, [&order] { order.push_back(2); });
  a->PostAt(10, [&order] { order.push_back(3); });
  exec.Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealtimeExecutorTest, DistinctQueuesRunConcurrently) {
  // Two tasks that each wait for the other to start can only both finish
  // if their queues genuinely run on different threads.
  RealtimeExecutor exec(4);
  TaskQueue* a = exec.CreateQueue("a");
  TaskQueue* b = exec.CreateQueue("b");
  std::atomic<int> started{0};
  auto rendezvous = [&started] {
    started.fetch_add(1);
    while (started.load() < 2) {
    }
  };
  a->Post(rendezvous);
  b->Post(rendezvous);
  exec.Drain();
  EXPECT_EQ(started.load(), 2);
}

TEST(RealtimeExecutorTest, ShutdownDropsQueuedWorkAndJoins) {
  auto exec = std::make_unique<RealtimeExecutor>(2);
  std::atomic<bool> ran{false};
  exec->Schedule(60 * kSecond, [&ran] { ran = true; });  // far future
  exec->Shutdown();
  exec.reset();
  EXPECT_FALSE(ran.load()) << "undelivered tasks are dropped, not run";
}

TEST(RealtimeExecutorTest, ShutdownRacesPendingTimers) {
  // Shutdown while timers at mixed deadlines are pending and more are
  // being scheduled from other threads: must join cleanly, never run a
  // task after the destructor returned, and never touch freed state
  // (the ASan/TSan lanes give this test its teeth).
  for (int round = 0; round < 20; ++round) {
    auto exec = std::make_unique<RealtimeExecutor>(4);
    auto ran = std::make_shared<std::atomic<int>>(0);
    std::atomic<bool> stop{false};
    std::thread scheduler([&exec, ran, &stop] {
      for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
        // A mix of due-now and far-future deadlines.
        SimTime delay = (i % 3 == 0) ? 0 : (i % 3 == 1) ? 200 : 60 * kSecond;
        exec->Schedule(delay, [ran] {
          ran->fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(100 * round));
    exec->Shutdown();
    stop.store(true, std::memory_order_release);
    scheduler.join();
    exec.reset();
    int after_reset = ran->load(std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // No task may fire after the executor is gone.
    EXPECT_EQ(ran->load(std::memory_order_relaxed), after_reset);
  }
}

TEST(RealtimeExecutorTest, ShutdownWaitsForInFlightStrandTasks) {
  // A strand task is mid-execution when Shutdown is called: the join must
  // wait for it (no use-after-free of queue state), and a task that
  // re-posts onto its own strand during shutdown must not crash.
  for (int round = 0; round < 20; ++round) {
    RealtimeExecutor exec(2);
    TaskQueue* q = exec.CreateQueue("strand");
    std::atomic<bool> entered{false};
    std::atomic<bool> finished{false};
    q->Post([&entered, &finished, q] {
      entered.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      q->Post([] {});  // re-post during (possible) shutdown: dropped or run
      finished.store(true, std::memory_order_release);
    });
    while (!entered.load(std::memory_order_acquire)) {
    }
    exec.Shutdown();
    // Shutdown joined the workers: the in-flight task ran to completion.
    EXPECT_TRUE(finished.load(std::memory_order_acquire));
  }
}

TEST(RealtimeExecutorTest, DrainConcurrentWithPost) {
  // Producers post from outside the pool while the main thread drains.
  // Drain must not miss work posted before the producers finished and
  // must not deadlock; a final drain after joining sees everything.
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  RealtimeExecutor exec(4);
  TaskQueue* q = exec.CreateQueue("strand");
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&exec, q, &ran, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        if ((p + i) % 2 == 0) {
          q->Post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        } else {
          exec.Schedule(i % 50, [&ran] {
            ran.fetch_add(1, std::memory_order_relaxed);
          });
        }
      }
    });
  }
  // Interleave drains with the posting storm.
  exec.Drain();
  for (auto& t : producers) t.join();
  exec.Drain();
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
}

TEST(RealtimeExecutorTest, DrainFromTimerStormTerminates) {
  // Chains of timers that re-schedule a bounded number of times: Drain
  // must follow the chains to quiescence (not return while a timer is
  // about to re-arm) and terminate once they stop.
  RealtimeExecutor exec(2);
  std::atomic<int> hops{0};
  std::function<void()> hop = [&exec, &hops, &hop] {
    if (hops.fetch_add(1, std::memory_order_relaxed) < 100) {
      exec.Schedule(100, hop);
    }
  };
  exec.Schedule(0, hop);
  exec.Drain();
  EXPECT_GE(hops.load(), 101);
}

TEST(RealtimeExecutorTest, RealtimeFlagDistinguishesBackends) {
  RealtimeExecutor rt(1);
  SimExecutor sim;
  EXPECT_TRUE(rt.realtime());
  EXPECT_FALSE(sim.realtime());
}

}  // namespace
}  // namespace rhino::runtime
