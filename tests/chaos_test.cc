// Chaos integration tests: seeded random fault schedules injected into a
// running pipeline while periodic checkpoints, replication chains, and
// handovers are all in flight. After the dust settles the run must have
// converged: exactly-once keyed output, every handover completed, no vnode
// owned by a dead instance, no replica advertised on a dead node, and the
// replication factor restored.
//
// The exactly-once assertions run on the real KeyedCounter pipeline (the
// NEXMark operators are statistically modeled and carry byte counts, not
// records); a Testbed-based NEXMark chaos run asserts the convergence
// invariants at bench scale.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <memory>
#include <string>

#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/stateful.h"
#include "harness.h"
#include "lsm/env.h"
#include "obs/observability.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/sim_executor.h"
#include "sim/fault_injector.h"
#include "state/lsm_state_backend.h"

namespace rhino::rhino {
namespace {

using dataflow::Batch;
using dataflow::Engine;
using dataflow::EngineOptions;
using dataflow::ExecutionGraph;
using dataflow::ProcessingProfile;
using dataflow::QueryDef;
using dataflow::Record;

constexpr int kPartitions = 4;
constexpr int kParallelism = 4;
constexpr uint64_t kKeys = 40;
constexpr int kWaves = 10;

/// Trace-shape form of exactly-once: no record delivered to an instance
/// strictly inside one of its buffering-hold spans. A hold left open is
/// legal only when the holder crashed — it then extends to infinity, so
/// any later delivery on that scope still fails the check.
void AssertNoDeliveryDuringHold(const obs::TraceLog& trace) {
  auto delivers = trace.Select("data", "deliver");
  for (const obs::TraceEvent* hold : trace.Spans("handover", "buffering_hold")) {
    SimTime end = hold->is_open() ? std::numeric_limits<SimTime>::max()
                                  : hold->end_us();
    for (const obs::TraceEvent* d : delivers) {
      if (d->scope != hold->scope) continue;
      EXPECT_FALSE(hold->time_us < d->time_us && d->time_us < end)
          << "record delivered to " << d->scope << " at t=" << d->time_us
          << " inside hold [" << hold->time_us << ", " << end
          << ") of handover " << hold->id;
    }
  }
}

/// Pipeline over a 7-node cluster (0 = broker, 1-6 = workers; 4 stateful
/// instances plus spare capacity to absorb up to two failures).
struct ChaosStack {
  runtime::SimExecutor sim;
  obs::Observability obs;
  sim::Cluster cluster;
  broker::Broker broker;
  lsm::MemEnv env;
  Engine engine;
  ReplicationManager rm;
  ReplicationRuntime runtime;
  RhinoCheckpointStorage storage;
  HandoverManager hm;
  sim::FaultInjector injector;
  std::unique_ptr<ExecutionGraph> graph;
  std::map<uint64_t, uint64_t> counts;

  explicit ChaosStack(uint64_t seed)
      : cluster(&sim, 7),
        broker({0}),
        engine(&sim, &cluster, &broker, Opts()),
        rm({1, 2, 3, 4, 5, 6}, /*r=*/2),
        runtime(&cluster, &rm),
        storage(&cluster, &runtime),
        hm(&engine, &rm, &runtime),
        injector(&sim, &cluster, seed) {
    obs.SetClock([this] { return sim.Now(); });
    obs.trace().set_data_events(true);
    engine.SetObservability(&obs);
    runtime.SetObservability(&obs);
    rm.SetObservability(&obs);
    injector.SetObservability(&obs);
    broker.CreateTopic("events", kPartitions);
    engine.SetCheckpointStorage(&storage);
    engine.SetFaultProbe([this](const std::string& e) { injector.Notify(e); });
    runtime.SetFaultProbe([this](const std::string& e) { injector.Notify(e); });
    injector.SetCrashHandler([this](int node) {
      engine.FailNode(node);
      sim.Schedule(300 * kMillisecond,
                   [this, node] { hm.RecoverFailedNode(node); });
    });

    QueryDef def;
    def.AddSource("src", "events", kPartitions)
        .AddStateful("counter", kParallelism, {"src"},
                     [this](Engine* eng, int subtask, int node) {
                       auto backend = state::LsmStateBackend::Open(
                           &env, "/state/c" + std::to_string(subtask),
                           "counter", static_cast<uint32_t>(subtask));
                       RHINO_CHECK(backend.ok());
                       return std::make_unique<dataflow::KeyedCounterOperator>(
                           eng, "counter", subtask, node, ProcessingProfile(),
                           std::move(backend).MoveValue());
                     })
        .AddSink("sink", 1, {"counter"});
    graph = ExecutionGraph::Build(&engine, def, {1, 2, 3, 4, 5, 6});
    graph->sinks("sink")[0]->SetCollector([this](const Record& r) {
      uint64_t c = std::stoull(r.payload);
      if (c > counts[r.key]) counts[r.key] = c;
    });
    std::vector<InstanceInfo> infos;
    for (auto* inst : graph->stateful("counter")) {
      infos.push_back({"counter", static_cast<uint32_t>(inst->subtask()),
                       inst->node_id(), 1});
    }
    rm.BuildGroups(infos);
    graph->StartSources();
  }

  static EngineOptions Opts() {
    EngineOptions opts;
    opts.num_key_groups = 64;
    opts.vnodes_per_instance = 2;
    return opts;
  }

  void ProduceWave() {
    for (uint64_t key = 0; key < kKeys; ++key) {
      Batch batch;
      batch.create_time = sim.Now();
      batch.count = 1;
      batch.bytes = 8;
      batch.records.push_back(Record{key, sim.Now(), 8, "x"});
      broker.topic("events")
          .partition(static_cast<int>(key) % kPartitions)
          .Append(std::move(batch));
    }
  }
};

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, RandomFaultScheduleIsExactlyOnce) {
  uint64_t seed = GetParam();
  ChaosStack stack(seed);
  stack.engine.StartPeriodicCheckpoints(800 * kMillisecond);

  // 1-2 crashes at seeded random times while waves, checkpoints, and
  // replication chains are in flight.
  int crash_count = 1 + static_cast<int>(seed % 2);
  auto schedule = stack.injector.ScheduleRandomCrashes(
      crash_count, {1, 2, 3, 4, 5, 6}, 2 * kSecond, 7 * kSecond,
      /*min_gap=*/1500 * kMillisecond);
  ASSERT_EQ(schedule.size(), static_cast<size_t>(crash_count));
  // Any failure below names the seed and the full fault schedule — paste
  // the seed back into this suite's INSTANTIATE range to replay the run.
  SCOPED_TRACE("chaos repro: " + stack.injector.Recipe());

  for (int wave = 0; wave < kWaves; ++wave) {
    stack.ProduceWave();
    stack.sim.RunUntil(stack.sim.Now() + kSecond);
  }
  stack.engine.StopPeriodicCheckpoints();
  stack.sim.RunUntil(stack.sim.Now() + 5 * kSecond);
  stack.ProduceWave();
  stack.sim.Run();

  // Every planned crash fired.
  EXPECT_EQ(stack.injector.crashes().size(), schedule.size());

  // Exactly-once: each of the kWaves+1 waves incremented every key once.
  for (uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_EQ(stack.counts[key], static_cast<uint64_t>(kWaves) + 1)
        << "seed " << seed << " key " << key;
  }
  // Every handover (including recovery handovers) converged.
  for (const auto& record : stack.engine.handovers()) {
    EXPECT_TRUE(record.completed) << "handover " << record.spec->id;
  }
  // Routing converged onto live instances only.
  auto* table = stack.engine.routing("counter");
  for (uint32_t v = 0; v < table->map().num_vnodes(); ++v) {
    uint32_t inst = table->InstanceForVnode(v);
    EXPECT_FALSE(stack.graph->stateful("counter")[inst]->halted())
        << "vnode " << v;
  }
  // The catalog advertises nothing on dead nodes and the replication
  // factor was restored (enough live workers remain for r=2).
  for (const auto& crash : stack.injector.crashes()) {
    for (uint32_t sub = 0; sub < kParallelism; ++sub) {
      EXPECT_EQ(stack.runtime.ReplicaOn("counter", sub, crash.node), nullptr);
    }
  }
  EXPECT_TRUE(stack.rm.degraded_groups().empty());

  // Trace-shape assertions: no delivery inside a buffering hold, every
  // crash and recovery recorded, and the chain shipped at least one
  // checkpoint transfer during the run.
  const obs::TraceLog& trace = stack.obs.trace();
  AssertNoDeliveryDuringHold(trace);
  EXPECT_EQ(trace.Count("fault", "crash"), stack.injector.crashes().size());
  EXPECT_EQ(trace.Count("handover", "recovery_start"),
            stack.injector.crashes().size());
  EXPECT_GT(trace.Spans("replication", "transfer").size(), 0u);
  // (Open alignment spans are legal here: an instance halted by a crash
  // keeps its in-flight alignment forever.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range<uint64_t>(1, 9));

// ------------------------------------------------ NEXMark testbed chaos ----

TEST(NexmarkChaos, TwoRandomFailuresConverge) {
  bench::TestbedOptions opts;
  opts.sut = bench::Sut::kRhino;
  opts.query = "NBQ5";
  opts.num_workers = 8;
  opts.checkpoint_interval = 10 * kSecond;
  opts.gen_tick = kSecond;
  bench::Testbed tb(opts);
  tb.observability.trace().set_data_events(true);
  tb.SeedState(64 * kMiB);

  sim::FaultInjector injector(&tb.sim, &tb.cluster, /*seed=*/7);
  injector.SetObservability(&tb.observability);
  injector.SetCrashHandler([&](int node) {
    tb.engine.FailNode(node);
    tb.sim.Schedule(tb.hm->options().recovery_scheduling_us,
                    [&tb, node] { tb.hm->RecoverFailedNode(node); });
  });
  tb.engine.SetFaultProbe(
      [&](const std::string& e) { injector.Notify(e); });
  tb.replication.SetFaultProbe(
      [&](const std::string& e) { injector.Notify(e); });

  tb.Start();
  tb.Run(opts.checkpoint_interval + 2 * kSecond);

  // Two worker crashes drawn at random inside one checkpoint interval —
  // the second lands while the first recovery may still be in flight.
  auto schedule = injector.ScheduleRandomCrashes(
      2, tb.worker_nodes(), tb.sim.Now() + kSecond,
      tb.sim.Now() + opts.checkpoint_interval, /*min_gap=*/2 * kSecond);
  ASSERT_EQ(schedule.size(), 2u);
  SCOPED_TRACE("chaos repro: " + injector.Recipe());
  tb.Run(4 * opts.checkpoint_interval);
  tb.StopGenerators();
  tb.Run(2 * opts.checkpoint_interval);

  EXPECT_EQ(injector.crashes().size(), 2u);
  for (const auto& record : tb.engine.handovers()) {
    EXPECT_TRUE(record.completed) << "handover " << record.spec->id;
  }
  EXPECT_GT(tb.engine.CountLiveInstances(), 0);
  for (const std::string& op : tb.stateful_ops) {
    auto* table = tb.engine.routing(op);
    for (uint32_t v = 0; v < table->map().num_vnodes(); ++v) {
      uint32_t inst = table->InstanceForVnode(v);
      auto* owner = tb.engine.FindStateful(op, inst);
      ASSERT_NE(owner, nullptr);
      EXPECT_FALSE(owner->halted()) << op << " vnode " << v;
    }
    // Dead nodes advertise no replicas.
    for (const auto& crash : injector.crashes()) {
      for (uint32_t sub = 0; sub < 64; ++sub) {
        EXPECT_EQ(tb.replication.ReplicaOn(op, sub, crash.node), nullptr);
      }
    }
  }

  // Same invariants, read off the protocol trace at bench scale.
  const obs::TraceLog& trace = tb.observability.trace();
  AssertNoDeliveryDuringHold(trace);
  EXPECT_EQ(trace.Count("fault", "crash"), 2u);
  EXPECT_EQ(trace.Count("handover", "recovery_start"), 2u);
  // Recovery moved state: every completed state_transfer span belongs to a
  // target scope, and the engine-level handover spans all closed.
  EXPECT_GT(trace.Spans("handover", "state_transfer").size(), 0u);
  size_t completed = 0;
  for (const auto& record : tb.engine.handovers()) {
    if (record.completed) ++completed;
  }
  EXPECT_EQ(trace.Spans("handover", "handover").size(), completed);
}

}  // namespace
}  // namespace rhino::rhino
