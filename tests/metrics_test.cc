#include <gtest/gtest.h>

#include "metrics/resource_monitor.h"
#include "metrics/timeline.h"
#include "runtime/sim_executor.h"
#include "sim/cluster.h"

namespace rhino::metrics {
namespace {

TEST(TimeSeriesTest, BucketsAggregate) {
  TimeSeries series(kSecond);
  series.Add(100, 10);
  series.Add(200, 20);
  series.Add(kSecond + 1, 100);
  auto buckets = series.Buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_DOUBLE_EQ(buckets[0].Mean(), 15.0);
  EXPECT_DOUBLE_EQ(buckets[0].min, 10.0);
  EXPECT_DOUBLE_EQ(buckets[0].max, 20.0);
  EXPECT_DOUBLE_EQ(buckets[1].Mean(), 100.0);
}

TEST(TimeSeriesTest, PeakMeanRespectsWindow) {
  TimeSeries series(kSecond);
  series.Add(0, 10);
  series.Add(5 * kSecond, 1000);
  series.Add(10 * kSecond, 50);
  EXPECT_DOUBLE_EQ(series.PeakMean(), 1000.0);
  EXPECT_DOUBLE_EQ(series.PeakMean(6 * kSecond), 50.0);
  EXPECT_DOUBLE_EQ(series.PeakMean(0, 2 * kSecond), 10.0);
}

TEST(ResourceMonitorTest, SamplesUtilizationDeltas) {
  runtime::SimExecutor sim;
  sim::NodeSpec spec;
  spec.cores = 2;
  spec.net_bytes_per_sec = 1e9;
  spec.net_latency = 0;
  sim::Cluster cluster(&sim, 2, spec);
  ResourceMonitor monitor(&sim, &cluster, {0, 1}, kSecond);
  monitor.Start();

  // Busy the network for ~0.5 s out of the first second.
  cluster.Transfer(0, 1, 500000000ull);
  // And some CPU on node 0.
  cluster.node(0).AddCpuBusy(kSecond);

  sim.RunUntil(3 * kSecond);
  monitor.Stop();
  sim.Run();

  ASSERT_GE(monitor.samples().size(), 2u);
  const ResourceSample& first = monitor.samples()[0];
  // 0.5 s tx + 0.5 s rx over 2 nodes * 2 directions * 1 s = 25%.
  EXPECT_NEAR(first.net_util, 0.25, 0.02);
  // 1 s busy over 2 nodes * 2 cores = 25%.
  EXPECT_NEAR(first.cpu_util, 0.25, 0.02);
  EXPECT_EQ(first.net_bytes, 1000000000u);  // tx + rx
  // Second interval: idle again.
  EXPECT_NEAR(monitor.samples()[1].net_util, 0.0, 0.01);
}

TEST(ResourceMonitorTest, MemoryProbeIsIncluded) {
  runtime::SimExecutor sim;
  sim::Cluster cluster(&sim, 1);
  ResourceMonitor monitor(&sim, &cluster, {0}, kSecond);
  monitor.SetMemoryProbe([] { return uint64_t{12345}; });
  monitor.Start();
  sim.RunUntil(kSecond);
  monitor.Stop();
  sim.Run();
  ASSERT_FALSE(monitor.samples().empty());
  EXPECT_EQ(monitor.samples()[0].memory_bytes, 12345u);
}

}  // namespace
}  // namespace rhino::metrics
