#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "lsm/arena.h"
#include "lsm/block_cache.h"
#include "lsm/bloom.h"
#include "lsm/db.h"
#include "lsm/env.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "lsm/write_batch.h"

namespace rhino::lsm {
namespace {

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

// ------------------------------------------------------------------- Env --

/// Fresh scratch directory on the real filesystem for PosixEnv tests.
std::string PosixScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "rhino_lsm_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(MemEnvTest, WriteReadRoundTrip) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/a", "hello").ok());
  std::string out;
  ASSERT_TRUE(env.ReadFile("/a", &out).ok());
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(env.GetFileSize("/a").value(), 5u);
}

TEST(MemEnvTest, MissingFileIsNotFound) {
  MemEnv env;
  std::string out;
  EXPECT_TRUE(env.ReadFile("/missing", &out).IsNotFound());
  EXPECT_FALSE(env.FileExists("/missing"));
}

TEST(MemEnvTest, HardLinkSharesContent) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/a", std::string(1000, 'x')).ok());
  ASSERT_TRUE(env.LinkFile("/a", "/b").ok());
  EXPECT_EQ(env.UniqueContentBytes(), 1000u);
  // Deleting one name keeps the other alive.
  ASSERT_TRUE(env.DeleteFile("/a").ok());
  std::string out;
  ASSERT_TRUE(env.ReadFile("/b", &out).ok());
  EXPECT_EQ(out.size(), 1000u);
}

TEST(MemEnvTest, LinkToExistingNameFails) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/a", "1").ok());
  ASSERT_TRUE(env.WriteFile("/b", "2").ok());
  EXPECT_EQ(env.LinkFile("/a", "/b").code(), StatusCode::kAlreadyExists);
}

TEST(MemEnvTest, ListDirReturnsDirectChildrenOnly) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("/db").ok());
  ASSERT_TRUE(env.WriteFile("/db/1.sst", "x").ok());
  ASSERT_TRUE(env.WriteFile("/db/2.sst", "y").ok());
  ASSERT_TRUE(env.WriteFile("/db/sub/3.sst", "z").ok());
  auto names = env.ListDir("/db");
  ASSERT_TRUE(names.ok());
  std::set<std::string> set(names->begin(), names->end());
  EXPECT_EQ(set, (std::set<std::string>{"1.sst", "2.sst"}));
}

TEST(MemEnvTest, RenameMovesContent) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/a", "data").ok());
  ASSERT_TRUE(env.RenameFile("/a", "/b").ok());
  EXPECT_FALSE(env.FileExists("/a"));
  std::string out;
  ASSERT_TRUE(env.ReadFile("/b", &out).ok());
  EXPECT_EQ(out, "data");
}

// ----------------------------------------------------------------- Bloom --

// Partial reads must clamp at EOF and treat past-EOF starts as empty OK
// reads on both Env implementations.
template <typename MakeEnv>
void CheckReadFileRangeEdgeCases(MakeEnv make_env, const std::string& dir) {
  auto env = make_env();
  std::string path = dir + "/f";
  ASSERT_TRUE(env->WriteFile(path, "0123456789").ok());

  std::string out;
  ASSERT_TRUE(env->ReadFileRange(path, 2, 4, &out).ok());
  EXPECT_EQ(out, "2345");
  // Read extending past EOF is clamped, not an error.
  ASSERT_TRUE(env->ReadFileRange(path, 7, 100, &out).ok());
  EXPECT_EQ(out, "789");
  // Read starting at EOF and past EOF both yield empty OK.
  ASSERT_TRUE(env->ReadFileRange(path, 10, 5, &out).ok());
  EXPECT_EQ(out, "");
  ASSERT_TRUE(env->ReadFileRange(path, 999, 5, &out).ok());
  EXPECT_EQ(out, "");
  // Zero-length range.
  ASSERT_TRUE(env->ReadFileRange(path, 3, 0, &out).ok());
  EXPECT_EQ(out, "");
  // Missing file.
  EXPECT_TRUE(env->ReadFileRange(dir + "/missing", 0, 1, &out).IsNotFound());
  EXPECT_TRUE(env->NewRandomAccessFile(dir + "/missing").status().IsNotFound());

  // Ranges read through a hard link see the same content.
  ASSERT_TRUE(env->LinkFile(path, dir + "/g").ok());
  ASSERT_TRUE(env->ReadFileRange(dir + "/g", 4, 3, &out).ok());
  EXPECT_EQ(out, "456");
  // ... even after the original name is deleted.
  ASSERT_TRUE(env->DeleteFile(path).ok());
  ASSERT_TRUE(env->ReadFileRange(dir + "/g", 0, 4, &out).ok());
  EXPECT_EQ(out, "0123");
}

TEST(MemEnvTest, ReadFileRangeEdgeCases) {
  CheckReadFileRangeEdgeCases([] { return std::make_unique<MemEnv>(); },
                              "/dir");
}

TEST(PosixEnvTest, ReadFileRangeEdgeCases) {
  CheckReadFileRangeEdgeCases([] { return std::make_unique<PosixEnv>(); },
                              PosixScratchDir("range"));
}

// A RandomAccessFile pins content: deleting (or replacing) the name must
// not disturb reads through an already-open handle. This property is what
// keeps live iterators working across compaction deletes.
template <typename MakeEnv>
void CheckRandomAccessFilePinsContent(MakeEnv make_env, const std::string& dir) {
  auto env = make_env();
  std::string path = dir + "/f";
  ASSERT_TRUE(env->WriteFile(path, "abcdef").ok());
  auto file = env->NewRandomAccessFile(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->Size(), 6u);

  ASSERT_TRUE(env->DeleteFile(path).ok());
  std::string out;
  ASSERT_TRUE((*file)->Read(1, 3, &out).ok());
  EXPECT_EQ(out, "bcd");
  ASSERT_TRUE((*file)->Read(4, 100, &out).ok());
  EXPECT_EQ(out, "ef");

  // A fresh file under the old name is new content; the handle still
  // serves the original bytes.
  ASSERT_TRUE(env->WriteFile(path, "XYZ").ok());
  ASSERT_TRUE((*file)->Read(0, 6, &out).ok());
  EXPECT_EQ(out, "abcdef");
}

TEST(MemEnvTest, RandomAccessFilePinsContent) {
  CheckRandomAccessFilePinsContent([] { return std::make_unique<MemEnv>(); },
                                   "/dir");
}

TEST(PosixEnvTest, RandomAccessFilePinsContent) {
  CheckRandomAccessFilePinsContent([] { return std::make_unique<PosixEnv>(); },
                                   PosixScratchDir("pin"));
}

// ------------------------------------------------------------ BlockCache --

TEST(BlockCacheTest, MissThenHit) {
  BlockCache cache(1024);
  uint64_t t = cache.NewTableId();
  EXPECT_EQ(cache.Lookup(t, 0), nullptr);
  cache.Insert(t, 0, std::make_shared<std::string>(100, 'a'));
  auto block = cache.Lookup(t, 0);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->size(), 100u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.usage_bytes(), 100u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsedUnderBudget) {
  BlockCache cache(300);
  uint64_t t = cache.NewTableId();
  cache.Insert(t, 0, std::make_shared<std::string>(100, 'a'));
  cache.Insert(t, 1, std::make_shared<std::string>(100, 'b'));
  cache.Insert(t, 2, std::make_shared<std::string>(100, 'c'));
  // Touch block 0 so block 1 is the LRU victim.
  ASSERT_NE(cache.Lookup(t, 0), nullptr);
  cache.Insert(t, 3, std::make_shared<std::string>(100, 'd'));
  EXPECT_EQ(cache.Lookup(t, 1), nullptr) << "LRU victim should be gone";
  EXPECT_NE(cache.Lookup(t, 0), nullptr);
  EXPECT_NE(cache.Lookup(t, 3), nullptr);
  EXPECT_LE(cache.usage_bytes(), 300u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(BlockCacheTest, OversizedBlockIsNotCached) {
  BlockCache cache(50);
  uint64_t t = cache.NewTableId();
  cache.Insert(t, 0, std::make_shared<std::string>(100, 'a'));
  EXPECT_EQ(cache.Lookup(t, 0), nullptr);
  EXPECT_EQ(cache.usage_bytes(), 0u);
}

TEST(BlockCacheTest, EraseTableDropsOnlyThatTable) {
  BlockCache cache(1024);
  uint64_t t1 = cache.NewTableId();
  uint64_t t2 = cache.NewTableId();
  cache.Insert(t1, 0, std::make_shared<std::string>(10, 'a'));
  cache.Insert(t2, 0, std::make_shared<std::string>(10, 'b'));
  cache.EraseTable(t1);
  EXPECT_EQ(cache.Lookup(t1, 0), nullptr);
  EXPECT_NE(cache.Lookup(t2, 0), nullptr);
  EXPECT_EQ(cache.usage_bytes(), 10u);
}

TEST(BlockCacheTest, PeakUsageTracksHighWaterMark) {
  BlockCache cache(250);
  uint64_t t = cache.NewTableId();
  cache.Insert(t, 0, std::make_shared<std::string>(100, 'a'));
  cache.Insert(t, 1, std::make_shared<std::string>(100, 'b'));
  cache.Insert(t, 2, std::make_shared<std::string>(100, 'c'));  // evicts one
  EXPECT_EQ(cache.peak_usage_bytes(), 200u);
  EXPECT_LE(cache.usage_bytes(), 250u);
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 2000; ++i) builder.AddKey(Key(i));
  std::string data = builder.Finish();
  BloomFilter filter(data);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(filter.MayContain(Key(i))) << i;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 2000; ++i) builder.AddKey(Key(i));
  std::string data = builder.Finish();
  BloomFilter filter(data);
  int fp = 0;
  for (int i = 2000; i < 12000; ++i) fp += filter.MayContain(Key(i));
  // 10 bits/key gives ~1% theoretical FPR; allow generous slack.
  EXPECT_LT(fp, 400);
}

TEST(BloomTest, EmptyFilterMatchesNothingSpurious) {
  BloomFilterBuilder builder(10);
  std::string data = builder.Finish();
  BloomFilter filter(data);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) hits += filter.MayContain(Key(i));
  EXPECT_LT(hits, 10);
}

// -------------------------------------------------------------- MemTable --

TEST(MemTableTest, InsertAndGet) {
  MemTable table;
  table.Add("b", 1, ValueType::kValue, "2");
  table.Add("a", 2, ValueType::kValue, "1");
  Entry e;
  ASSERT_TRUE(table.Get("a", &e));
  EXPECT_EQ(e.value, "1");
  EXPECT_EQ(e.seq, 2u);
  EXPECT_FALSE(table.Get("c", &e));
}

TEST(MemTableTest, OverwriteKeepsNewest) {
  MemTable table;
  table.Add("k", 1, ValueType::kValue, "old");
  table.Add("k", 2, ValueType::kValue, "new");
  Entry e;
  ASSERT_TRUE(table.Get("k", &e));
  EXPECT_EQ(e.value, "new");
  EXPECT_EQ(table.NumEntries(), 1u);
}

TEST(MemTableTest, TombstonesAreVisible) {
  MemTable table;
  table.Add("k", 1, ValueType::kValue, "v");
  table.Add("k", 2, ValueType::kDeletion, "");
  Entry e;
  ASSERT_TRUE(table.Get("k", &e));
  EXPECT_EQ(e.type, ValueType::kDeletion);
}

TEST(MemTableTest, IterationIsSorted) {
  MemTable table;
  Random rng(5);
  std::set<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    std::string k = Key(static_cast<int>(rng.Uniform(10000)));
    keys.insert(k);
    table.Add(k, static_cast<uint64_t>(i), ValueType::kValue, "v");
  }
  std::string prev;
  size_t count = 0;
  for (auto it = table.NewIterator(); it.Valid(); it.Next()) {
    EXPECT_LT(prev, it.key());
    prev = it.key();
    ++count;
  }
  EXPECT_EQ(count, keys.size());
}

TEST(MemTableTest, ApproximateBytesGrows) {
  MemTable table;
  uint64_t before = table.ApproximateBytes();
  table.Add("key", 1, ValueType::kValue, std::string(1000, 'v'));
  EXPECT_GT(table.ApproximateBytes(), before + 1000);
}

// --------------------------------------------------------------- SSTable --

TEST(SSTableTest, BuildAndLookup) {
  SSTableBuilder builder(256);
  for (int i = 0; i < 500; ++i) {
    builder.Add(Key(i), static_cast<uint64_t>(i), ValueType::kValue,
                "value" + std::to_string(i));
  }
  auto contents = std::make_shared<const std::string>(builder.Finish());
  auto table = SSTableReader::Open(contents);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_entries(), 500u);
  EXPECT_EQ((*table)->smallest(), Key(0));
  EXPECT_EQ((*table)->largest(), Key(499));

  Entry e;
  for (int i = 0; i < 500; i += 7) {
    ASSERT_TRUE((*table)->Get(Key(i), &e).ok()) << i;
    EXPECT_EQ(e.value, "value" + std::to_string(i));
  }
  EXPECT_TRUE((*table)->Get(Key(1000), &e).IsNotFound());
  EXPECT_TRUE((*table)->Get("aaa", &e).IsNotFound());
}

TEST(SSTableTest, IteratorVisitsAllInOrder) {
  SSTableBuilder builder(128);
  for (int i = 0; i < 300; ++i) {
    builder.Add(Key(i), 1, ValueType::kValue, "v");
  }
  auto contents = std::make_shared<const std::string>(builder.Finish());
  auto table = SSTableReader::Open(contents);
  ASSERT_TRUE(table.ok());
  int i = 0;
  for (auto it = (*table)->NewIterator(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), Key(i));
    ++i;
  }
  EXPECT_EQ(i, 300);
}

TEST(SSTableTest, CorruptFooterDetected) {
  auto contents = std::make_shared<const std::string>("garbage");
  EXPECT_FALSE(SSTableReader::Open(contents).ok());
  SSTableBuilder builder;
  builder.Add("a", 1, ValueType::kValue, "v");
  std::string data = builder.Finish();
  data.back() ^= 0xff;  // clobber the magic
  EXPECT_FALSE(
      SSTableReader::Open(std::make_shared<const std::string>(data)).ok());
}

TEST(SSTableTest, TombstonesRoundTrip) {
  SSTableBuilder builder;
  builder.Add("dead", 3, ValueType::kDeletion, "");
  auto table = SSTableReader::Open(
      std::make_shared<const std::string>(builder.Finish()));
  ASSERT_TRUE(table.ok());
  Entry e;
  ASSERT_TRUE((*table)->Get("dead", &e).ok());
  EXPECT_EQ(e.type, ValueType::kDeletion);
  EXPECT_EQ(e.seq, 3u);
}

// -------------------------------------------------------------------- DB --

Options SmallOptions() {
  Options opts;
  opts.memtable_bytes = 16 * 1024;
  opts.level_base_bytes = 64 * 1024;
  opts.target_file_bytes = 16 * 1024;
  return opts;
}

TEST(DBTest, PutGetRoundTrip) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k1", "v1").ok());
  std::string v;
  ASSERT_TRUE((*db)->Get("k1", &v).ok());
  EXPECT_EQ(v, "v1");
  EXPECT_TRUE((*db)->Get("k2", &v).IsNotFound());
}

TEST(DBTest, OverwriteAcrossFlush) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k", "old").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Put("k", "new").ok());
  std::string v;
  ASSERT_TRUE((*db)->Get("k", &v).ok());
  EXPECT_EQ(v, "new");
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Get("k", &v).ok());
  EXPECT_EQ(v, "new");
}

TEST(DBTest, DeleteShadowsOlderValue) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k", "v").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Delete("k").ok());
  std::string v;
  EXPECT_TRUE((*db)->Get("k", &v).IsNotFound());
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_TRUE((*db)->Get("k", &v).IsNotFound());
}

TEST(DBTest, ManyKeysSurviveFlushesAndCompactions) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  const int kKeys = 5000;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE((*db)->Put(Key(i), "value" + std::to_string(i)).ok());
  }
  EXPECT_GT((*db)->flush_count(), 0u);
  EXPECT_GT((*db)->compaction_count(), 0u);
  std::string v;
  for (int i = 0; i < kKeys; i += 17) {
    ASSERT_TRUE((*db)->Get(Key(i), &v).ok()) << i;
    EXPECT_EQ(v, "value" + std::to_string(i));
  }
}

TEST(DBTest, CompactRangeDropsTombstonesAtBottom) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 200; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v").ok());
  for (int i = 0; i < 200; ++i) ASSERT_TRUE((*db)->Delete(Key(i)).ok());
  ASSERT_TRUE((*db)->CompactRange().ok());
  auto it = (*db)->NewIterator();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid()) << "all keys deleted, tree should be empty";
}

TEST(DBTest, IteratorMergesAllSources) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE((*db)->Put(Key(i), "a").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  for (int i = 500; i < 1500; ++i) ASSERT_TRUE((*db)->Put(Key(i), "b").ok());
  auto it = (*db)->NewIterator();
  ASSERT_TRUE(it.ok());
  int count = 0;
  std::string prev;
  for (; it->Valid(); it->Next()) {
    EXPECT_LT(prev, it->key());
    prev = it->key();
    if (it->key() >= Key(500)) {
      EXPECT_EQ(it->value(), "b");
    }
    ++count;
  }
  EXPECT_EQ(count, 1500);
}

TEST(DBTest, RangeIteratorRespectsBounds) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v").ok());
  auto it = (*db)->NewIterator(Key(10), Key(20));
  ASSERT_TRUE(it.ok());
  int count = 0;
  for (; it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, 10);
}

TEST(DBTest, ReopenRecoversFromManifest) {
  MemEnv env;
  {
    auto db = DB::Open(&env, "/db", SmallOptions());
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 2000; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v").ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  std::string v;
  for (int i = 0; i < 2000; i += 13) {
    ASSERT_TRUE((*db)->Get(Key(i), &v).ok()) << i;
  }
}

TEST(DBTest, CheckpointIsPointInTime) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 500; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v1").ok());
  auto ckpt = (*db)->CreateCheckpoint("/ckpt1");
  ASSERT_TRUE(ckpt.ok());
  EXPECT_GT(ckpt->total_bytes, 0u);

  // Mutate after the checkpoint.
  for (int i = 0; i < 500; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v2").ok());
  ASSERT_TRUE((*db)->Flush().ok());

  auto restored = DB::OpenFromCheckpoint(&env, "/ckpt1", "/db2", SmallOptions());
  ASSERT_TRUE(restored.ok());
  std::string v;
  ASSERT_TRUE((*restored)->Get(Key(42), &v).ok());
  EXPECT_EQ(v, "v1") << "checkpoint must not see post-checkpoint writes";
}

TEST(DBTest, CheckpointHardLinksDoNotCopyBytes) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*db)->Put(Key(i), std::string(100, 'x')).ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
  uint64_t before = env.UniqueContentBytes();
  auto ckpt = (*db)->CreateCheckpoint("/ckpt");
  ASSERT_TRUE(ckpt.ok());
  uint64_t after = env.UniqueContentBytes();
  // Only the checkpoint MANIFEST adds unique bytes; SSTs are hard links.
  EXPECT_LT(after - before, 64 * 1024u);
}

TEST(DBTest, IncrementalCheckpointDeltaIsOnlyNewFiles) {
  MemEnv env;
  Options opts = SmallOptions();
  // Pin the tree shape: a compaction between the checkpoints would rewrite
  // files and defeat the sharing this test demonstrates.
  opts.auto_compact = false;
  auto db = DB::Open(&env, "/db", opts);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v").ok());
  auto ckpt1 = (*db)->CreateCheckpoint("/c1");
  ASSERT_TRUE(ckpt1.ok());

  for (int i = 1000; i < 1200; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v").ok());
  auto ckpt2 = (*db)->CreateCheckpoint("/c2");
  ASSERT_TRUE(ckpt2.ok());

  std::set<std::string> old_files;
  for (const auto& f : ckpt1->files) old_files.insert(f.name);
  uint64_t delta_bytes = 0;
  for (const auto& f : ckpt2->files) {
    if (!old_files.count(f.name)) delta_bytes += f.size;
  }
  EXPECT_GT(delta_bytes, 0u);
  EXPECT_LT(delta_bytes, ckpt2->total_bytes)
      << "most files must be shared with the previous checkpoint";
}

TEST(DBTest, CheckpointSurvivesSourceCompaction) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v1").ok());
  auto ckpt = (*db)->CreateCheckpoint("/ckpt");
  ASSERT_TRUE(ckpt.ok());
  // Compact the source DB: inputs get deleted, but hard links in the
  // checkpoint keep the content alive.
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v2").ok());
  ASSERT_TRUE((*db)->CompactRange().ok());

  auto restored = DB::OpenFromCheckpoint(&env, "/ckpt", "/db3", SmallOptions());
  ASSERT_TRUE(restored.ok());
  std::string v;
  ASSERT_TRUE((*restored)->Get(Key(7), &v).ok());
  EXPECT_EQ(v, "v1");
}

TEST(DBTest, ApproximateSizeTracksData) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  uint64_t empty = (*db)->ApproximateSize();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*db)->Put(Key(i), std::string(50, 'x')).ok());
  }
  EXPECT_GT((*db)->ApproximateSize(), empty + 2000 * 50);
}

TEST(DBWalTest, UnflushedWritesSurviveReopen) {
  MemEnv env;
  {
    auto db = DB::Open(&env, "/db", SmallOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("k1", "v1").ok());
    ASSERT_TRUE((*db)->Delete("k1").ok());
    ASSERT_TRUE((*db)->Put("k2", "v2").ok());
    // No flush: the memtable only lives in the WAL.
  }
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->wal_entries_recovered(), 3u);
  std::string v;
  EXPECT_TRUE((*db)->Get("k1", &v).IsNotFound()) << "tombstone replayed";
  ASSERT_TRUE((*db)->Get("k2", &v).ok());
  EXPECT_EQ(v, "v2");
}

TEST(DBWalTest, FlushTruncatesTheLog) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k", "v").ok());
  EXPECT_TRUE(env.FileExists("/db/WAL"));
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_FALSE(env.FileExists("/db/WAL"))
      << "flushed entries are durable in SSTs; the WAL restarts";
}

TEST(DBWalTest, TornTailIsDiscardedNotFatal) {
  MemEnv env;
  {
    auto db = DB::Open(&env, "/db", SmallOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("intact", "value").ok());
    ASSERT_TRUE((*db)->Put("torn", "value").ok());
  }
  // Simulate a crash mid-append: chop bytes off the log tail.
  std::string wal;
  ASSERT_TRUE(env.ReadFile("/db/WAL", &wal).ok());
  wal.resize(wal.size() - 3);
  ASSERT_TRUE(env.WriteFile("/db/WAL", wal).ok());

  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->wal_entries_recovered(), 1u);
  std::string v;
  ASSERT_TRUE((*db)->Get("intact", &v).ok());
  EXPECT_TRUE((*db)->Get("torn", &v).IsNotFound());
}

TEST(DBWalTest, DisabledWalSkipsRecovery) {
  MemEnv env;
  Options opts = SmallOptions();
  opts.enable_wal = false;
  {
    auto db = DB::Open(&env, "/db", opts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("k", "v").ok());
  }
  EXPECT_FALSE(env.FileExists("/db/WAL"));
  auto db = DB::Open(&env, "/db", opts);
  ASSERT_TRUE(db.ok());
  std::string v;
  EXPECT_TRUE((*db)->Get("k", &v).IsNotFound())
      << "without a WAL the unflushed memtable is lost on reopen";
}

TEST(DBWalTest, GroupCommitCostsOneAppendPerBatch) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  WriteBatch batch;
  for (int i = 0; i < 100; ++i) batch.Put(Key(i), "v");
  ASSERT_TRUE((*db)->Write(batch).ok());
  EXPECT_EQ((*db)->wal_appends(), 1u) << "one framed append for the batch";
  EXPECT_EQ((*db)->wal_records(), 100u);
  uint64_t batched_bytes = (*db)->wal_bytes_written();
  EXPECT_GT(batched_bytes, 0u);
  // Singleton commits pay one append each.
  for (int i = 100; i < 120; ++i) ASSERT_TRUE((*db)->Put(Key(i), "v").ok());
  EXPECT_EQ((*db)->wal_appends(), 21u);
  EXPECT_EQ((*db)->wal_records(), 120u);
}

TEST(DBWalTest, BatchRecoversAtomicallyAcrossReopen) {
  MemEnv env;
  {
    auto db = DB::Open(&env, "/db", SmallOptions());
    ASSERT_TRUE(db.ok());
    WriteBatch batch;
    batch.Put("a", "1");
    batch.Put("b", "2");
    batch.Delete("a");
    ASSERT_TRUE((*db)->Write(batch).ok());
  }
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->wal_entries_recovered(), 3u);
  std::string v;
  EXPECT_TRUE((*db)->Get("a", &v).IsNotFound()) << "in-batch delete replayed";
  ASSERT_TRUE((*db)->Get("b", &v).ok());
  EXPECT_EQ(v, "2");
}

TEST(DBWalTest, TornBatchIsDiscardedWholesale) {
  MemEnv env;
  {
    auto db = DB::Open(&env, "/db", SmallOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("intact", "v").ok());
    WriteBatch batch;
    batch.Put("t1", "v");
    batch.Put("t2", "v");
    ASSERT_TRUE((*db)->Write(batch).ok());
  }
  // Crash mid-append of the batch record: all of it must vanish, not just
  // the entries the tear happened to land in.
  std::string wal;
  ASSERT_TRUE(env.ReadFile("/db/WAL", &wal).ok());
  size_t full = wal.size();
  wal.resize(wal.size() - 3);
  ASSERT_TRUE(env.WriteFile("/db/WAL", wal).ok());
  {
    auto db = DB::Open(&env, "/db", SmallOptions());
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->wal_entries_recovered(), 1u);
    std::string v;
    ASSERT_TRUE((*db)->Get("intact", &v).ok());
    EXPECT_TRUE((*db)->Get("t1", &v).IsNotFound());
    EXPECT_TRUE((*db)->Get("t2", &v).IsNotFound());
    // Recovery truncated the torn suffix from the file itself.
    ASSERT_TRUE(env.ReadFile("/db/WAL", &wal).ok());
    EXPECT_LT(wal.size(), full - 3) << "torn record removed, not kept";
    // New commits land after the clean prefix.
    ASSERT_TRUE((*db)->Put("after", "v").ok());
  }
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->wal_entries_recovered(), 2u);
  std::string v;
  ASSERT_TRUE((*db)->Get("intact", &v).ok());
  ASSERT_TRUE((*db)->Get("after", &v).ok());
}

TEST(DBWalTest, ChecksumMismatchDropsTailRecord) {
  MemEnv env;
  {
    auto db = DB::Open(&env, "/db", SmallOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("first", "v").ok());
    ASSERT_TRUE((*db)->Put("second", "v").ok());
  }
  // Flip a payload byte of the last record without changing the length:
  // only the checksum can catch this.
  std::string wal;
  ASSERT_TRUE(env.ReadFile("/db/WAL", &wal).ok());
  wal.back() ^= 0x40;
  ASSERT_TRUE(env.WriteFile("/db/WAL", wal).ok());
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->wal_entries_recovered(), 1u);
  std::string v;
  ASSERT_TRUE((*db)->Get("first", &v).ok());
  EXPECT_TRUE((*db)->Get("second", &v).IsNotFound());
}

TEST(DBWalTest, RecoveryAfterFlushOnlyReplaysNewTail) {
  MemEnv env;
  {
    auto db = DB::Open(&env, "/db", SmallOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("flushed", "v1").ok());
    ASSERT_TRUE((*db)->Flush().ok());
    // The WAL rotated: this entry starts a fresh log.
    ASSERT_TRUE((*db)->Put("tail", "v2").ok());
  }
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->wal_entries_recovered(), 1u)
      << "flushed entries recover from the SST, not the WAL";
  std::string v;
  ASSERT_TRUE((*db)->Get("flushed", &v).ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE((*db)->Get("tail", &v).ok());
  EXPECT_EQ(v, "v2");
}

TEST(DBTest, ManifestEditLogRotatesAndReplays) {
  MemEnv env;
  Options opts = SmallOptions();
  opts.auto_compact = false;
  opts.manifest_rotate_edits = 4;
  uint64_t rotations = 0;
  {
    auto db = DB::Open(&env, "/db", opts);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->manifest_rotations(), 1u) << "open writes a snapshot";
    for (int f = 0; f < 10; ++f) {
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE((*db)->Put(Key(f * 50 + i), "v" + std::to_string(f)).ok());
      }
      ASSERT_TRUE((*db)->Flush().ok());
    }
    rotations = (*db)->manifest_rotations();
    // 10 flush edits with a threshold of 4 → at least two more snapshots.
    EXPECT_GE(rotations, 3u);
    EXPECT_EQ((*db)->NumLevelFiles(0), 10);
  }
  auto db = DB::Open(&env, "/db", opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->NumLevelFiles(0), 10)
      << "snapshot + trailing edits must replay the full tree shape";
  std::string v;
  for (int i = 0; i < 500; i += 17) {
    ASSERT_TRUE((*db)->Get(Key(i), &v).ok()) << i;
  }
}

TEST(DBTest, ManifestReplaysCompactionEdits) {
  MemEnv env;
  Options opts = SmallOptions();
  opts.auto_compact = false;
  {
    auto db = DB::Open(&env, "/db", opts);
    ASSERT_TRUE(db.ok());
    for (int f = 0; f < 3; ++f) {
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE((*db)->Put(Key(i), "f" + std::to_string(f)).ok());
      }
      ASSERT_TRUE((*db)->Flush().ok());
    }
    ASSERT_TRUE((*db)->CompactRange().ok());
    // More edits after the compaction's remove+add edit.
    for (int i = 300; i < 400; ++i) ASSERT_TRUE((*db)->Put(Key(i), "x").ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = DB::Open(&env, "/db", opts);
  ASSERT_TRUE(db.ok());
  std::string v;
  ASSERT_TRUE((*db)->Get(Key(7), &v).ok());
  EXPECT_EQ(v, "f2") << "newest flush wins after compaction edits replay";
  ASSERT_TRUE((*db)->Get(Key(350), &v).ok());
  EXPECT_EQ(v, "x");
}

// ---------------------------------------------- WritableFile / WriteBatch --

TEST(MemEnvTest, WritableFileAppendsBufferAndFlush) {
  MemEnv env;
  auto f = env.NewWritableFile("/w", /*append=*/false);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("hello ").ok());
  ASSERT_TRUE((*f)->Append("world").ok());
  EXPECT_EQ((*f)->Size(), 11u);
  ASSERT_TRUE((*f)->Flush().ok());
  std::string out;
  ASSERT_TRUE(env.ReadFile("/w", &out).ok());
  EXPECT_EQ(out, "hello world");
  // Reopening in append mode keeps the bytes; the destructor flushes.
  f->reset();
  {
    auto g = env.NewWritableFile("/w", /*append=*/true);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE((*g)->Append("!").ok());
    EXPECT_EQ((*g)->Size(), 12u);
  }
  ASSERT_TRUE(env.ReadFile("/w", &out).ok());
  EXPECT_EQ(out, "hello world!");
  // Truncating open starts fresh content.
  { auto h = env.NewWritableFile("/w", /*append=*/false); ASSERT_TRUE(h.ok()); }
  ASSERT_TRUE(env.ReadFile("/w", &out).ok());
  EXPECT_EQ(out, "");
}

TEST(MemEnvTest, WritableFileTruncateCreatesFreshContent) {
  // Like WriteFile, a truncating open must not disturb hard links to the
  // old content (checkpointed files are immutable).
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("/a", "old-bytes").ok());
  ASSERT_TRUE(env.LinkFile("/a", "/b").ok());
  {
    auto f = env.NewWritableFile("/a", /*append=*/false);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("new").ok());
  }
  std::string out;
  ASSERT_TRUE(env.ReadFile("/b", &out).ok());
  EXPECT_EQ(out, "old-bytes");
  ASSERT_TRUE(env.ReadFile("/a", &out).ok());
  EXPECT_EQ(out, "new");
}

TEST(PosixEnvTest, WritableFileRoundTrip) {
  PosixEnv env;
  std::string dir = PosixScratchDir("writable");
  std::string path = dir + "/log";
  {
    auto f = env.NewWritableFile(path, /*append=*/false);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("abc").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    EXPECT_EQ((*f)->Size(), 3u);
  }
  {
    auto f = env.NewWritableFile(path, /*append=*/true);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ((*f)->Size(), 3u) << "append open resumes at existing size";
    ASSERT_TRUE((*f)->Append("def").ok());
  }
  std::string out;
  ASSERT_TRUE(env.ReadFile(path, &out).ok());
  EXPECT_EQ(out, "abcdef");
  std::filesystem::remove_all(dir);
}

TEST(WriteBatchTest, CountsPayloadAndIterationOrder) {
  WriteBatch batch;
  EXPECT_TRUE(batch.empty());
  batch.Put("k1", "v1");
  batch.Delete("k2");
  batch.Put("k3", "v3");
  EXPECT_EQ(batch.num_entries(), 3u);
  EXPECT_EQ(batch.num_puts(), 2u);
  EXPECT_EQ(batch.num_deletes(), 1u);
  EXPECT_GT(batch.ApproximateBytes(), 0u);

  std::vector<std::string> seen;
  ASSERT_TRUE(batch
                  .ForEach([&](ValueType type, std::string_view key,
                               std::string_view value) {
                    seen.push_back(std::string(key) + "/" +
                                   (type == ValueType::kDeletion
                                        ? "DEL"
                                        : std::string(value)));
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "k1/v1");
  EXPECT_EQ(seen[1], "k2/DEL");
  EXPECT_EQ(seen[2], "k3/v3");

  // Payload round-trips through the WAL decode path.
  uint64_t count = 0;
  std::string_view entries;
  std::string payload = batch.EncodePayload();
  ASSERT_TRUE(WriteBatch::DecodePayload(payload, &count, &entries).ok());
  EXPECT_EQ(count, 3u);
  int decoded = 0;
  ASSERT_TRUE(WriteBatch::DecodeEntries(entries,
                                        [&](ValueType, std::string_view,
                                            std::string_view) {
                                          ++decoded;
                                          return Status::OK();
                                        })
                  .ok());
  EXPECT_EQ(decoded, 3);

  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.ApproximateBytes(), 0u);
}

TEST(ArenaTest, CopiedStringsStayStableAcrossGrowth) {
  Arena arena;
  std::vector<std::string_view> views;
  std::vector<std::string> expect;
  for (int i = 0; i < 4000; ++i) {
    // Mix of small strings and block-sized outliers to hit both the bump
    // path and the own-block fallback.
    std::string s = Key(i) + std::string(i % 37 == 0 ? 40000 : i % 97, 'p');
    views.push_back(arena.CopyString(s));
    expect.push_back(std::move(s));
  }
  ASSERT_GT(arena.MemoryUsage(), 0u);
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], expect[i]) << i;
  }
}

TEST(MemTableTest, ArenaFootprintTracksEntries) {
  MemTable table;
  // The skiplist head node claims the first arena block up front.
  uint64_t baseline = table.ArenaBytes();
  EXPECT_GT(baseline, 0u);
  for (int i = 0; i < 1000; ++i) {
    table.Add(Key(i), static_cast<uint64_t>(i + 1), ValueType::kValue,
              std::string(64, 'x'));
  }
  // The arena holds at least the logical bytes (keys + values + nodes).
  EXPECT_GE(table.ArenaBytes(), 1000u * (11 + 64));
  Entry e;
  ASSERT_TRUE(table.Get(Key(123), &e));
  EXPECT_EQ(e.value, std::string(64, 'x'));
}

// ------------------------------------------------------------ Crash sweep --

/// Fault-injecting Env: delegates to a wrapped MemEnv and fails every
/// write-class operation (handle appends, whole-file writes, renames) once
/// `fail_after` of them have succeeded. A failing handle append tears:
/// half of its bytes reach the file first — the crash shape the WAL
/// framing exists to detect.
class FailingEnv : public Env {
 public:
  explicit FailingEnv(MemEnv* base) : base_(base) {}

  /// Remaining write-class operations before injection; -1 disables.
  void SetBudget(int n) { budget_ = n; }

  bool ShouldFail() {
    if (budget_ < 0) return false;
    if (budget_ == 0) return true;
    --budget_;
    return false;
  }

  Status WriteFile(const std::string& path, std::string_view data) override {
    if (ShouldFail()) return Status::IOError("injected WriteFile failure");
    return base_->WriteFile(path, data);
  }
  Status AppendFile(const std::string& path, std::string_view data) override {
    if (ShouldFail()) return Status::IOError("injected AppendFile failure");
    return base_->AppendFile(path, data);
  }
  Status RenameFile(const std::string& src, const std::string& dst) override {
    if (ShouldFail()) return Status::IOError("injected RenameFile failure");
    return base_->RenameFile(src, dst);
  }
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override {
    RHINO_ASSIGN_OR_RETURN(auto inner, base_->NewWritableFile(path, append));
    return std::unique_ptr<WritableFile>(
        new FailingWritableFile(this, std::move(inner)));
  }

  Status ReadFile(const std::string& path, std::string* out) override {
    return base_->ReadFile(path, out);
  }
  Status ReadFileRange(const std::string& path, uint64_t offset, size_t n,
                       std::string* out) override {
    return base_->ReadFileRange(path, offset, n, out);
  }
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    return base_->NewRandomAccessFile(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status LinkFile(const std::string& src, const std::string& dst) override {
    return base_->LinkFile(src, dst);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }

 private:
  class FailingWritableFile : public WritableFile {
   public:
    FailingWritableFile(FailingEnv* env, std::unique_ptr<WritableFile> inner)
        : env_(env), inner_(std::move(inner)) {}
    Status Append(std::string_view data) override {
      if (env_->ShouldFail()) {
        // Torn write: half the record lands, then the "machine dies".
        (void)inner_->Append(data.substr(0, data.size() / 2));
        (void)inner_->Flush();
        return Status::IOError("injected torn append");
      }
      return inner_->Append(data);
    }
    Status Flush() override {
      if (env_->ShouldFail()) return Status::IOError("injected flush failure");
      return inner_->Flush();
    }
    Status Sync() override { return Flush(); }
    uint64_t Size() const override { return inner_->Size(); }

   private:
    FailingEnv* env_;
    std::unique_ptr<WritableFile> inner_;
  };

  MemEnv* base_;
  int budget_ = -1;
};

// Sweep the crash point across the write path: for each budget N the Nth
// write-class operation fails (possibly tearing a record), the DB is
// abandoned, and a reopen on the healed Env must surface every mutation
// that was acknowledged before the failure.
TEST(DBCrashTest, AckedWritesSurviveInjectedCrashSweep) {
  // The budget range reaches past the first memtable flush (~op 240 at
  // this value size), so the sweep also crashes inside table builds,
  // renames, and manifest edits — not just WAL appends.
  for (int n = 1; n <= 300; n += 3) {
    MemEnv base;
    FailingEnv env(&base);
    Options opts = SmallOptions();
    std::vector<int> acked;
    {
      env.SetBudget(n);
      auto db = DB::Open(&env, "/db", opts);
      if (!db.ok()) continue;  // crashed inside Open: nothing acked
      for (int i = 0; i < 200; ++i) {
        if (!(*db)->Put(Key(i), std::string(100, static_cast<char>('a' + i % 26)))
                 .ok()) {
          break;  // crash point: abandon the DB without a clean close
        }
        acked.push_back(i);
      }
    }
    env.SetBudget(-1);  // healed
    auto db = DB::Open(&env, "/db", opts);
    ASSERT_TRUE(db.ok()) << "budget=" << n << ": " << db.status().ToString();
    std::string v;
    for (int i : acked) {
      ASSERT_TRUE((*db)->Get(Key(i), &v).ok()) << "budget=" << n << " i=" << i;
      EXPECT_EQ(v, std::string(100, static_cast<char>('a' + i % 26)))
          << "budget=" << n << " i=" << i;
    }
  }
}

// An iterator is a snapshot: writes, flushes, and full compactions issued
// after its creation must not change what it yields, even though compaction
// deletes the very files it is reading (the pinned handles keep them alive).
TEST(DBTest, IteratorSnapshotStableAcrossFlushAndCompact) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallOptions());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*db)->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());

  auto it = (*db)->NewIterator();
  ASSERT_TRUE(it.ok());

  // Mutate heavily behind the snapshot: overwrites, new keys, deletes,
  // then force the tree through a full rewrite.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*db)->Put(Key(i), "CHANGED").ok());
  }
  for (int i = 500; i < 600; ++i) {
    ASSERT_TRUE((*db)->Put(Key(i), "NEW").ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*db)->Delete(Key(i)).ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->CompactRange().ok());

  int count = 0;
  for (; it->Valid(); it->Next(), ++count) {
    ASSERT_EQ(it->key(), Key(count));
    ASSERT_EQ(it->value(), "v" + std::to_string(count))
        << "snapshot leaked a post-creation write at " << it->key();
  }
  EXPECT_EQ(count, 500) << "snapshot gained or lost keys";
}

// Regression: the per-DB table cache used to grow one entry per table file
// ever opened, leaking handles across long flush/compaction histories. It
// is now an LRU capped at Options::max_open_tables.
TEST(DBTest, OpenTableHandlesStayBounded) {
  MemEnv env;
  Options opts = SmallOptions();
  opts.memtable_bytes = 2 * 1024;  // frequent flushes
  opts.max_open_tables = 4;
  auto db = DB::Open(&env, "/db", opts);
  ASSERT_TRUE(db.ok());
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          (*db)->Put(Key(i), std::string(64, static_cast<char>('a' + cycle % 26)))
              .ok());
    }
    ASSERT_TRUE((*db)->Flush().ok());
    EXPECT_LE((*db)->OpenTableCount(), opts.max_open_tables);
  }
  ASSERT_TRUE((*db)->CompactRange().ok());
  EXPECT_LE((*db)->OpenTableCount(), opts.max_open_tables);
  // Reads after heavy churn still bounded.
  std::string v;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*db)->Get(Key(i), &v).ok());
  }
  EXPECT_LE((*db)->OpenTableCount(), opts.max_open_tables);
}

// A full scan's resident block memory is capped by the cache budget, no
// matter how much state it covers.
TEST(DBTest, ScanBlockMemoryBoundedByCacheBudget) {
  MemEnv env;
  Options opts = SmallOptions();
  opts.block_cache = std::make_shared<BlockCache>(32 * 1024);
  auto db = DB::Open(&env, "/db", opts);
  ASSERT_TRUE(db.ok());
  // ~1 MiB of state: far more than the 32 KiB budget.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*db)->Put(Key(i), std::string(512, 'x')).ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
  opts.block_cache->ResetStats();

  auto it = (*db)->NewIterator();
  ASSERT_TRUE(it.ok());
  int count = 0;
  for (; it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, 2000);
  EXPECT_LE(opts.block_cache->peak_usage_bytes(), 32u * 1024);
  EXPECT_GT(opts.block_cache->misses(), 0u);
}

// Warm point lookups are served from the block cache without re-reading
// the file.
TEST(DBTest, PointGetsWarmTheBlockCache) {
  MemEnv env;
  Options opts = SmallOptions();
  opts.block_cache = std::make_shared<BlockCache>(1024 * 1024);
  auto db = DB::Open(&env, "/db", opts);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*db)->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
  opts.block_cache->Clear();
  opts.block_cache->ResetStats();

  std::string v;
  ASSERT_TRUE((*db)->Get(Key(123), &v).ok());
  uint64_t cold_misses = opts.block_cache->misses();
  EXPECT_GT(cold_misses, 0u);
  ASSERT_TRUE((*db)->Get(Key(123), &v).ok());
  EXPECT_EQ(opts.block_cache->misses(), cold_misses)
      << "second read of the same block should hit the cache";
  EXPECT_GT(opts.block_cache->hits(), 0u);
}

// Property sweep: random workload against an in-memory reference model.
class DBFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DBFuzzTest, MatchesReferenceModel) {
  MemEnv env;
  Options opts = SmallOptions();
  opts.memtable_bytes = 4 * 1024;  // force frequent flushes
  auto db = DB::Open(&env, "/db", opts);
  ASSERT_TRUE(db.ok());
  std::map<std::string, std::string> model;
  Random rng(GetParam());
  for (int op = 0; op < 3000; ++op) {
    std::string key = Key(static_cast<int>(rng.Uniform(300)));
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {  // put
        std::string value = "v" + std::to_string(rng.Next() % 1000);
        ASSERT_TRUE((*db)->Put(key, value).ok());
        model[key] = value;
        break;
      }
      case 2: {  // delete
        ASSERT_TRUE((*db)->Delete(key).ok());
        model.erase(key);
        break;
      }
      case 3: {  // get
        std::string v;
        Status st = (*db)->Get(key, &v);
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_TRUE(st.IsNotFound()) << key;
        } else {
          ASSERT_TRUE(st.ok()) << key << " " << st.ToString();
          EXPECT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  // Full-scan equivalence.
  auto it = (*db)->NewIterator();
  ASSERT_TRUE(it.ok());
  auto mit = model.begin();
  for (; it->Valid(); it->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it->key(), mit->first);
    EXPECT_EQ(it->value(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DBFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 101, 202, 303));

}  // namespace
}  // namespace rhino::lsm
