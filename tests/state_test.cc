#include <gtest/gtest.h>

#include <string>

#include "lsm/env.h"
#include "state/lsm_state_backend.h"
#include "state/modeled_state_backend.h"

namespace rhino::state {
namespace {

TEST(DeltaFilesTest, ComputesNewFilesOnly) {
  std::vector<StateFile> prev = {{"a", 10}, {"b", 20}};
  std::vector<StateFile> cur = {{"a", 10}, {"b", 20}, {"c", 30}};
  auto delta = DeltaFiles(prev, cur);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].name, "c");
  EXPECT_EQ(delta[0].bytes, 30u);
}

TEST(DeltaFilesTest, EmptyPreviousMeansFullDelta) {
  std::vector<StateFile> cur = {{"a", 1}, {"b", 2}};
  EXPECT_EQ(DeltaFiles({}, cur).size(), 2u);
}

TEST(CheckpointDescriptorTest, ByteTotals) {
  CheckpointDescriptor desc;
  desc.files = {{"a", 100}, {"b", 50}};
  desc.delta_files = {{"b", 50}};
  EXPECT_EQ(desc.TotalBytes(), 150u);
  EXPECT_EQ(desc.DeltaBytes(), 50u);
}

// -------------------------------------------------------- LsmStateBackend

class LsmBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto backend = LsmStateBackend::Open(&env_, "/state/op-0", "op", 0);
    ASSERT_TRUE(backend.ok());
    backend_ = std::move(backend).MoveValue();
  }
  lsm::MemEnv env_;
  std::unique_ptr<LsmStateBackend> backend_;
};

TEST_F(LsmBackendTest, PutGetScopedByVnode) {
  ASSERT_TRUE(backend_->Put(1, "k", "v1", 10).ok());
  ASSERT_TRUE(backend_->Put(2, "k", "v2", 10).ok());
  std::string v;
  ASSERT_TRUE(backend_->Get(1, "k", &v).ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE(backend_->Get(2, "k", &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_TRUE(backend_->Get(3, "k", &v).IsNotFound());
}

TEST_F(LsmBackendTest, VnodeByteAccounting) {
  ASSERT_TRUE(backend_->Put(5, "a", "x", 100).ok());
  ASSERT_TRUE(backend_->Put(5, "b", "y", 50).ok());
  ASSERT_TRUE(backend_->Put(6, "a", "z", 25).ok());
  EXPECT_EQ(backend_->VnodeBytes(5), 150u);
  EXPECT_EQ(backend_->VnodeBytes(6), 25u);
  EXPECT_EQ(backend_->SizeBytes(), 175u);
  ASSERT_TRUE(backend_->Delete(5, "a", 100).ok());
  EXPECT_EQ(backend_->VnodeBytes(5), 50u);
}

TEST_F(LsmBackendTest, ScanVnodeReturnsOnlyItsKeys) {
  ASSERT_TRUE(backend_->Put(1, "a", "1", 1).ok());
  ASSERT_TRUE(backend_->Put(1, "b", "2", 1).ok());
  ASSERT_TRUE(backend_->Put(2, "c", "3", 1).ok());
  auto entries = backend_->ScanVnode(1);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].first, "a");
  EXPECT_EQ((*entries)[1].first, "b");
}

TEST_F(LsmBackendTest, ScanPrefixFiltersWithinVnode) {
  ASSERT_TRUE(backend_->Put(1, "aa1", "1", 1).ok());
  ASSERT_TRUE(backend_->Put(1, "aa2", "2", 1).ok());
  ASSERT_TRUE(backend_->Put(1, "ab1", "3", 1).ok());
  auto entries = backend_->ScanPrefix(1, "aa");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(LsmBackendTest, CheckpointDescribesFilesAndDeltas) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        backend_->Put(1, "key" + std::to_string(i), "value", 32).ok());
  }
  auto c1 = backend_->Checkpoint(1);
  ASSERT_TRUE(c1.ok());
  EXPECT_FALSE(c1->files.empty());
  EXPECT_EQ(c1->delta_files.size(), c1->files.size())
      << "first checkpoint: everything is new";
  EXPECT_EQ(c1->vnode_bytes.at(1), 3200u);

  for (int i = 100; i < 120; ++i) {
    ASSERT_TRUE(
        backend_->Put(1, "key" + std::to_string(i), "value", 32).ok());
  }
  auto c2 = backend_->Checkpoint(2);
  ASSERT_TRUE(c2.ok());
  EXPECT_LT(c2->DeltaBytes(), c2->TotalBytes());
  EXPECT_GT(c2->DeltaBytes(), 0u);
}

TEST_F(LsmBackendTest, ExtractIngestMovesVnodes) {
  ASSERT_TRUE(backend_->Put(3, "a", "va", 10).ok());
  ASSERT_TRUE(backend_->Put(3, "b", "vb", 10).ok());
  ASSERT_TRUE(backend_->Put(4, "c", "vc", 10).ok());

  auto blob = backend_->ExtractVnodes({3});
  ASSERT_TRUE(blob.ok());

  auto other = LsmStateBackend::Open(&env_, "/state/op-1", "op", 1);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE((*other)->IngestVnodes(*blob, false).ok());
  std::string v;
  ASSERT_TRUE((*other)->Get(3, "a", &v).ok());
  EXPECT_EQ(v, "va");
  ASSERT_TRUE((*other)->Get(3, "b", &v).ok());
  EXPECT_EQ(v, "vb");
  EXPECT_TRUE((*other)->Get(4, "c", &v).IsNotFound());
  EXPECT_EQ((*other)->VnodeBytes(3), 20u);

  ASSERT_TRUE(backend_->DropVnodes({3}).ok());
  EXPECT_TRUE(backend_->Get(3, "a", &v).IsNotFound());
  EXPECT_EQ(backend_->VnodeBytes(3), 0u);
  ASSERT_TRUE(backend_->Get(4, "c", &v).ok()) << "vnode 4 untouched";
}

TEST_F(LsmBackendTest, ApplyBatchGroupCommitsMixedRun) {
  std::vector<StateWrite> writes;
  writes.push_back({1, false, "a", "va", 10});
  writes.push_back({1, false, "b", "vb", 10});
  writes.push_back({2, false, "c", "vc", 5});
  writes.push_back({1, true, "a", "", 10});  // delete within the same run
  uint64_t appends_before = backend_->db()->wal_appends();
  ASSERT_TRUE(backend_->ApplyBatch(writes).ok());
  EXPECT_EQ(backend_->db()->wal_appends(), appends_before + 1)
      << "the whole run must be one group commit";
  std::string v;
  EXPECT_TRUE(backend_->Get(1, "a", &v).IsNotFound());
  ASSERT_TRUE(backend_->Get(1, "b", &v).ok());
  EXPECT_EQ(v, "vb");
  ASSERT_TRUE(backend_->Get(2, "c", &v).ok());
  EXPECT_EQ(v, "vc");
  EXPECT_EQ(backend_->VnodeBytes(1), 10u);
  EXPECT_EQ(backend_->VnodeBytes(2), 5u);
}

TEST_F(LsmBackendTest, ExtractVnodeBlobsMatchesPerVnodeExtraction) {
  for (int v = 0; v < 6; v += 2) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(backend_
                      ->Put(static_cast<uint32_t>(v), "k" + std::to_string(i),
                            "v" + std::to_string(v) + "-" + std::to_string(i),
                            8)
                      .ok());
    }
  }
  // The single-scan blobs must be byte-identical to what the per-vnode
  // path produces — including for an owned-but-empty vnode (5) — so every
  // downstream consumer (replication, handover ingest) is unaffected.
  std::vector<uint32_t> owned = {0, 2, 4, 5};
  auto blobs = backend_->ExtractVnodeBlobs(owned);
  ASSERT_TRUE(blobs.ok());
  ASSERT_EQ(blobs->size(), owned.size());
  for (uint32_t v : owned) {
    auto single = backend_->ExtractVnodes({v});
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(blobs->at(v), *single) << "vnode " << v;
  }
  // And they ingest cleanly.
  auto other = LsmStateBackend::Open(&env_, "/state/op-2", "op", 2);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE((*other)->IngestVnodes(blobs->at(2), false).ok());
  std::string v;
  ASSERT_TRUE((*other)->Get(2, "k7", &v).ok());
  EXPECT_EQ(v, "v2-7");
}

// ----------------------------------------------------- ModeledStateBackend

TEST(ModeledBackendTest, ByteAccounting) {
  ModeledStateBackend backend("op", 0);
  backend.AddBytes(1, 1000);
  backend.AddBytes(2, 500);
  backend.RemoveBytes(1, 300);
  EXPECT_EQ(backend.VnodeBytes(1), 700u);
  EXPECT_EQ(backend.SizeBytes(), 1200u);
}

TEST(ModeledBackendTest, RemoveClampsAtZero) {
  ModeledStateBackend backend("op", 0);
  backend.AddBytes(1, 100);
  backend.RemoveBytes(1, 1000);
  EXPECT_EQ(backend.VnodeBytes(1), 0u);
}

TEST(ModeledBackendTest, CheckpointsAreIncremental) {
  ModeledStateBackend backend("op", 0);
  backend.AddBytes(1, 10000);
  auto c1 = backend.Checkpoint(1);
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1->TotalBytes(), 10000u);
  EXPECT_EQ(c1->DeltaBytes(), 10000u);

  backend.AddBytes(1, 2000);
  auto c2 = backend.Checkpoint(2);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2->TotalBytes(), 12000u);
  EXPECT_EQ(c2->DeltaBytes(), 2000u) << "only the new bytes are delta";

  // Nothing new: empty delta.
  auto c3 = backend.Checkpoint(3);
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ(c3->DeltaBytes(), 0u);
}

TEST(ModeledBackendTest, ExtractIngestMovesBytes) {
  ModeledStateBackend origin("op", 0);
  origin.AddBytes(1, 4000);
  origin.AddBytes(2, 6000);
  auto blob = origin.ExtractVnodes({2});
  ASSERT_TRUE(blob.ok());

  ModeledStateBackend target("op", 1);
  ASSERT_TRUE(target.IngestVnodes(*blob, false).ok());
  EXPECT_EQ(target.VnodeBytes(2), 6000u);
  ASSERT_TRUE(origin.DropVnodes({2}).ok());
  EXPECT_EQ(origin.SizeBytes(), 4000u);
}

TEST(ModeledBackendTest, ExtractVnodeBlobsMatchesPerVnodeExtraction) {
  ModeledStateBackend backend("op", 0);
  backend.AddBytes(1, 4000);
  backend.AddBytes(2, 6000);
  auto blobs = backend.ExtractVnodeBlobs({1, 2, 9});
  ASSERT_TRUE(blobs.ok());
  ASSERT_EQ(blobs->size(), 3u);
  for (uint32_t v : {1u, 2u, 9u}) {
    auto single = backend.ExtractVnodes({v});
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(blobs->at(v), *single) << "vnode " << v;
  }
}

TEST(ModeledBackendTest, IngestedBytesAppearInNextDelta) {
  ModeledStateBackend target("op", 1);
  ModeledStateBackend origin("op", 0);
  origin.AddBytes(1, 5000);
  auto blob = origin.ExtractVnodes({1});
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(target.IngestVnodes(*blob, false).ok());
  auto ckpt = target.Checkpoint(1);
  ASSERT_TRUE(ckpt.ok());
  EXPECT_EQ(ckpt->DeltaBytes(), 5000u);
}

TEST(ModeledBackendTest, AdoptedCheckpointBytesAreNotReplicatedAgain) {
  ModeledStateBackend origin("op", 0);
  origin.AddBytes(7, 123456);
  auto ckpt = origin.Checkpoint(1);
  ASSERT_TRUE(ckpt.ok());

  ModeledStateBackend target("op", 1);
  target.AdoptCheckpointVnodes(*ckpt, {7});
  EXPECT_EQ(target.VnodeBytes(7), 123456u);
  auto next = target.Checkpoint(1);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->DeltaBytes(), 0u)
      << "adopted files are already durable; no new delta";
  EXPECT_EQ(next->TotalBytes(), 123456u);
}

TEST(ModeledBackendTest, ValueOperationsAreNotSupported) {
  ModeledStateBackend backend("op", 0);
  std::string v;
  EXPECT_EQ(backend.Get(1, "k", &v).code(), StatusCode::kNotSupported);
  EXPECT_TRUE(backend.ScanVnode(1)->empty());
}

}  // namespace
}  // namespace rhino::state
