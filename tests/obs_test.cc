// Unit tests for the observability layer: metrics registry handle
// discipline, trace-log span bookkeeping, and the three exporters.

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>

#include "obs/exporters.h"
#include "obs/metrics_registry.h"
#include "obs/observability.h"
#include "obs/trace_log.h"

namespace rhino::obs {
namespace {

// ---------------------------------------------------------------- registry --

TEST(MetricsRegistry, HandlesAreIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("rhino_test_total");
  Counter* b = registry.GetCounter("rhino_test_total");
  EXPECT_EQ(a, b);
  a->Increment();
  b->Increment(2);
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, LabelsArePartOfIdentity) {
  MetricsRegistry registry;
  Counter* join = registry.GetCounter("rhino_op_records_total", {{"op", "join"}});
  Counter* agg = registry.GetCounter("rhino_op_records_total", {{"op", "agg"}});
  EXPECT_NE(join, agg);
  join->Increment(10);
  EXPECT_EQ(agg->value(), 0u);
  // Same labels in any construction order -> same handle.
  Counter* join2 =
      registry.GetCounter("rhino_op_records_total", {{"op", "join"}});
  EXPECT_EQ(join, join2);
}

TEST(MetricsRegistry, HandlesStayStableAcrossGrowth) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("first_total");
  first->Increment();
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler_" + std::to_string(i) + "_total")->Increment();
  }
  EXPECT_EQ(first, registry.GetCounter("first_total"));
  EXPECT_EQ(first->value(), 1u);
}

TEST(MetricsRegistry, KeyOfSerializesSortedLabels) {
  EXPECT_EQ(MetricsRegistry::KeyOf("m", {}), "m");
  EXPECT_EQ(MetricsRegistry::KeyOf("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=\"1\",b=\"2\"}");
}

TEST(MetricsRegistry, GaugeAndHistogram) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("rhino_degraded_groups");
  g->Set(3);
  g->Add(-1);
  EXPECT_DOUBLE_EQ(g->value(), 2.0);

  HistogramMetric* h = registry.GetHistogram("rhino_latency_us");
  for (int i = 1; i <= 100; ++i) h->Observe(i * 1000);
  EXPECT_EQ(h->histogram().count(), 100u);
  EXPECT_GE(h->histogram().Percentile(99), h->histogram().Percentile(50));
  h->Reset();
  EXPECT_EQ(h->histogram().count(), 0u);
}

// --------------------------------------------------------------- trace log --

TEST(TraceLog, StampsEventsWithTheInstalledClock) {
  TraceLog trace;
  SimTime now = 0;
  trace.SetClock([&now] { return now; });
  now = 42;
  trace.Emit("checkpoint", "trigger", "engine", 7);
  ASSERT_EQ(trace.size(), 1u);
  const TraceEvent& ev = trace.events().front();
  EXPECT_EQ(ev.time_us, 42);
  EXPECT_EQ(ev.id, 7u);
  EXPECT_FALSE(ev.is_span());
}

TEST(TraceLog, SpanDurationIsEndMinusBegin) {
  TraceLog trace;
  SimTime now = 100;
  trace.SetClock([&now] { return now; });
  uint64_t span = trace.BeginSpan("handover", "buffering_hold", "join#3", 1,
                                  {{"pending_moves", 2}});
  ASSERT_NE(span, 0u);
  EXPECT_TRUE(trace.events().front().is_open());
  now = 350;
  trace.EndSpan(span, {{"released", 1}});
  const TraceEvent& ev = trace.events().front();
  EXPECT_FALSE(ev.is_open());
  EXPECT_EQ(ev.time_us, 100);
  EXPECT_EQ(ev.duration_us, 250);
  EXPECT_EQ(ev.end_us(), 350);
  EXPECT_EQ(ev.args.at("pending_moves"), 2);
  EXPECT_EQ(ev.args.at("released"), 1);  // merged at EndSpan
}

TEST(TraceLog, EndSpanIgnoresUnknownHandles) {
  TraceLog trace;
  trace.EndSpan(0);
  trace.EndSpan(12345);
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceLog, SelectFiltersByCategoryAndName) {
  TraceLog trace;
  trace.Emit("handover", "rewire", "join#0", 1);
  trace.Emit("handover", "marker_injected", "engine", 1);
  trace.Emit("replication", "catchup", "join#0", 2);
  EXPECT_EQ(trace.Count("handover"), 2u);
  EXPECT_EQ(trace.Count("handover", "rewire"), 1u);
  EXPECT_EQ(trace.Count("replication"), 1u);
  EXPECT_EQ(trace.Count("fault"), 0u);
  auto spans = trace.Spans("handover");
  EXPECT_TRUE(spans.empty());  // instants are not spans
}

TEST(TraceLog, DisabledLogRecordsNothing) {
  TraceLog trace;
  trace.set_enabled(false);
  trace.Emit("checkpoint", "trigger", "engine");
  uint64_t span = trace.BeginSpan("handover", "state_transfer", "join#0");
  EXPECT_EQ(span, 0u);
  trace.EndSpan(span);
  EXPECT_EQ(trace.size(), 0u);

  trace.set_enabled(true);
  trace.Emit("checkpoint", "trigger", "engine");
  EXPECT_EQ(trace.size(), 1u);
}

TEST(TraceLog, DataEventsAreOptIn) {
  TraceLog trace;
  EXPECT_FALSE(trace.data_events());
  trace.set_data_events(true);
  EXPECT_TRUE(trace.data_events());
  // The firehose is off whenever the whole log is off.
  trace.set_enabled(false);
  EXPECT_FALSE(trace.data_events());
}

TEST(TraceLog, ClearDropsOpenSpans) {
  TraceLog trace;
  uint64_t span = trace.BeginSpan("handover", "state_transfer", "join#0");
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  trace.EndSpan(span);  // must not crash or resurrect the span
  EXPECT_EQ(trace.size(), 0u);
}

// --------------------------------------------------------------- exporters --

TEST(Exporters, PrometheusTextListsEveryFamily) {
  MetricsRegistry registry;
  registry.GetCounter("rhino_checkpoint_completed_total")->Increment(4);
  registry.GetGauge("rhino_replication_degraded_groups")->Set(1.5);
  HistogramMetric* h =
      registry.GetHistogram("rhino_op_latency_us", {{"op", "join"}});
  h->Observe(1000);
  h->Observe(3000);

  std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("rhino_checkpoint_completed_total 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("rhino_replication_degraded_groups 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("rhino_op_latency_us_count{op=\"join\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rhino_op_latency_us{op=\"join\",quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(Exporters, MetricsJsonIsFlatAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("rhino_handover_bytes_total")->Increment(123);
  registry.GetHistogram("rhino_handover_duration_us")->Observe(500);
  std::string json = MetricsToJson(registry);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"rhino_handover_bytes_total\": 123"),
            std::string::npos);
  EXPECT_NE(json.find("\"rhino_handover_duration_us_count\": 1"),
            std::string::npos);
  // Inner quotes around the quantile label are escaped in the JSON key.
  EXPECT_NE(
      json.find("\"rhino_handover_duration_us{quantile=\\\"0.5\\\"}\": 500"),
      std::string::npos);
}

TEST(Exporters, ChromeTraceHasThreadNamesSpansAndInstants) {
  TraceLog trace;
  SimTime now = 10;
  trace.SetClock([&now] { return now; });
  uint64_t span = trace.BeginSpan("handover", "state_transfer", "join#1", 9);
  now = 60;
  trace.EndSpan(span);
  trace.Emit("fault", "crash", "node3", 1, {{"halted_instances", 4}});
  uint64_t open = trace.BeginSpan("handover", "buffering_hold", "join#1");
  (void)open;  // left open: aborted protocols render with zero duration

  std::string json = TraceToChromeJson(trace);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"join#1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"halted_instances\":4"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"dur\":0"), std::string::npos);
}

TEST(Exporters, WriteTextFileRoundTrips) {
  std::string path = ::testing::TempDir() + "/obs_test_export.json";
  ASSERT_TRUE(WriteTextFile(path, "{\"ok\":1}\n").ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"ok\":1}\n");
}

// ----------------------------------------------------------- observability --

TEST(Observability, DefaultInstanceIsProcessWide) {
  EXPECT_EQ(Observability::Default(), Observability::Default());
}

TEST(Observability, ToggleGatesTheTraceOnly) {
  Observability obs;
  obs.set_enabled(false);
  obs.trace().Emit("checkpoint", "trigger", "engine");
  EXPECT_EQ(obs.trace().size(), 0u);
  // Metric handles keep counting regardless of the trace toggle.
  obs.metrics().GetCounter("rhino_test_total")->Increment();
  EXPECT_EQ(obs.metrics().GetCounter("rhino_test_total")->value(), 1u);
}

}  // namespace
}  // namespace rhino::obs
