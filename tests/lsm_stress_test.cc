#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "lsm/db.h"
#include "lsm/env.h"
#include "lsm/write_batch.h"

/// Seeded stress over the sharded-concurrency LSM: parallel writers (puts,
/// deletes, batches), point readers, and snapshot scanners all hammer one
/// store while flushes and compactions run on the background worker. Every
/// schedule is driven by per-thread `Random(seed + role)` streams, so a
/// failure reproduces from its seed alone; the CI `lsm-concurrency` lane
/// sweeps RHINO_LSM_STRESS_SEED under TSan to explore distinct
/// interleavings, the same escape hatch the nightly chaos sweep uses.

namespace rhino::lsm {
namespace {

uint64_t StressSeed() {
  const char* env_seed = std::getenv("RHINO_LSM_STRESS_SEED");
  return env_seed != nullptr ? std::strtoull(env_seed, nullptr, 10) : 1;
}

std::string Key(int writer, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "w%02d-key%06d", writer, i);
  return buf;
}

/// Small enough that the workload crosses flush + L0 + L1 compaction many
/// times; sharded + background so every concurrency path is exercised.
Options StressOptions() {
  Options opts;
  opts.memtable_bytes = 16 * 1024;
  opts.target_file_bytes = 8 * 1024;
  opts.level_base_bytes = 32 * 1024;
  opts.l0_compaction_trigger = 2;
  opts.memtable_shards = 4;
  opts.background_maintenance = true;
  return opts;
}

TEST(LsmStressTest, MixedWorkloadUnderBackgroundMaintenance) {
  const uint64_t seed = StressSeed();
  SCOPED_TRACE("RHINO_LSM_STRESS_SEED=" + std::to_string(seed));

  MemEnv env;
  auto db = DB::Open(&env, "/db", StressOptions());
  ASSERT_TRUE(db.ok());

  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 150;
  constexpr int kOpsPerWriter = 1200;
  constexpr int kReaders = 2;

  // Each writer owns a disjoint key stripe and tracks its own expectation
  // locally (no shared model, no extra synchronization to mask races).
  std::vector<std::map<int, std::optional<std::string>>> expected(kWriters);
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Random rng(seed * 1000 + static_cast<uint64_t>(t));
      for (int op = 0; op < kOpsPerWriter; ++op) {
        int k = static_cast<int>(rng.Uniform(kKeysPerWriter));
        if (rng.OneIn(8)) {
          ASSERT_TRUE((*db)->Delete(Key(t, k)).ok());
          expected[t][k] = std::nullopt;
        } else if (rng.OneIn(4)) {
          // Atomic batch across a few of this writer's keys.
          WriteBatch batch;
          for (int j = 0; j < 3; ++j) {
            int bk = static_cast<int>(rng.Uniform(kKeysPerWriter));
            std::string value = "w" + std::to_string(t) + "-batch" +
                                std::to_string(op) + std::string(40, 'b');
            batch.Put(Key(t, bk), value);
            expected[t][bk] = value;
          }
          ASSERT_TRUE((*db)->Write(batch).ok());
        } else {
          std::string value = "w" + std::to_string(t) + "-v" +
                              std::to_string(op) + std::string(40, '.');
          ASSERT_TRUE((*db)->Put(Key(t, k), value).ok());
          expected[t][k] = value;
        }
      }
    });
  }

  // Point readers: any hit must be a complete value from the owning
  // writer's stripe (prefix "w<t>-"), never torn or misplaced bytes.
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Random rng(seed * 2000 + static_cast<uint64_t>(r));
      while (!done.load()) {
        int t = static_cast<int>(rng.Uniform(kWriters));
        int k = static_cast<int>(rng.Uniform(kKeysPerWriter));
        std::string value;
        Status s = (*db)->Get(Key(t, k), &value);
        if (s.ok()) {
          ASSERT_EQ(value.substr(0, 2 + (t >= 10)), "w" + std::to_string(t))
              << Key(t, k);
        } else {
          ASSERT_TRUE(s.IsNotFound()) << s.message();
        }
      }
    });
  }

  // Snapshot scanner: every scan must yield strictly increasing keys, each
  // value owned by the right stripe — even while compactions are deleting
  // the tables the snapshot reads through.
  std::thread scanner([&] {
    while (!done.load()) {
      auto iter = (*db)->NewIterator();
      ASSERT_TRUE(iter.ok());
      std::string prev;
      for (; iter->Valid(); iter->Next()) {
        ASSERT_TRUE(prev.empty() || prev < iter->key()) << prev;
        prev = iter->key();
        ASSERT_EQ(iter->value().substr(0, 1), "w");
      }
    }
  });

  for (auto& th : writers) th.join();
  done.store(true);
  for (auto& th : readers) th.join();
  scanner.join();

  ASSERT_TRUE((*db)->WaitForBackgroundWork().ok());
  EXPECT_GT((*db)->flush_count(), 0u) << "workload must cross the flush path";

  auto verify = [&](DB* store) {
    for (int t = 0; t < kWriters; ++t) {
      for (const auto& [k, want] : expected[t]) {
        std::string value;
        Status s = store->Get(Key(t, k), &value);
        if (want.has_value()) {
          ASSERT_TRUE(s.ok()) << Key(t, k) << ": " << s.message();
          EXPECT_EQ(value, *want) << Key(t, k);
        } else {
          EXPECT_TRUE(s.IsNotFound()) << Key(t, k);
        }
      }
    }
  };
  verify(db->get());

  // Full manual compaction must preserve the exact same view, and the
  // amplification ledger must be internally consistent with it.
  ASSERT_TRUE((*db)->CompactRange().ok());
  verify(db->get());
  EXPECT_GT((*db)->user_bytes_written(), 0u);
  EXPECT_GE((*db)->write_amplification(), 1.0);

  // Reopen: WAL + MANIFEST recovery must land on the same view the live
  // store answered with.
  db->reset();
  auto reopened = DB::Open(&env, "/db", StressOptions());
  ASSERT_TRUE(reopened.ok());
  verify(reopened->get());
}

}  // namespace
}  // namespace rhino::lsm
