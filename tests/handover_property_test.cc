// Property-based verification of Theorem 1 (paper §4.1.3): for *any*
// schedule of records and reconfigurations, a query reconfigured by
// handovers produces exactly the same keyed results as an undisturbed
// golden run — no record lost, none double-counted — and every handover
// completes in finite time.
//
// Each parameterized instance drives a random workload (seeded), injects
// 1-3 random handovers (random origin/target/vnode subsets, including
// chained moves and whole-instance moves) at random times, and compares
// final per-key counts against the golden run of the same schedule.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "broker/broker.h"
#include "common/random.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "obs/observability.h"
#include "runtime/sim_executor.h"
#include "state/lsm_state_backend.h"

namespace rhino::dataflow {
namespace {

constexpr int kPartitions = 4;
constexpr int kParallelism = 4;
constexpr int kWaves = 6;
constexpr int kKeysPerWave = 25;

/// One reconfiguration planned from a seed.
struct PlannedMove {
  int wave = 0;  // inject after this wave
  uint32_t origin = 0;
  uint32_t target = 0;
  double fraction = 0.5;
};

/// Deterministic transfer delegate with a seed-dependent delay.
class DelayedDelegate : public HandoverDelegate {
 public:
  DelayedDelegate(runtime::SimExecutor* sim, SimTime delay)
      : sim_(sim), delay_(delay) {}

  void TransferState(const HandoverSpec& spec, const HandoverMove& move,
                     StatefulInstance* origin, StatefulInstance* target,
                     std::function<void()> done) override {
    ASSERT_NE(origin, nullptr);
    auto blob = origin->backend()->ExtractVnodes(move.vnodes);
    ASSERT_TRUE(blob.ok());
    auto marks = origin->GetWatermarks(move.vnodes);
    HandoverSpec spec_copy = spec;
    HandoverMove move_copy = move;
    sim_->Schedule(delay_, [=, blob = std::move(blob).MoveValue()] {
      RHINO_CHECK_OK(target->backend()->IngestVnodes(blob, false));
      target->MergeWatermarks(marks);
      origin->CompleteHandoverAsOrigin(spec_copy, move_copy);
      target->CompleteHandoverAsTarget(spec_copy, move_copy);
      done();
    });
  }

 private:
  runtime::SimExecutor* sim_;
  SimTime delay_;
};

/// Runs the workload; when `moves` is empty this is the golden run.
std::map<uint64_t, uint64_t> RunSchedule(uint64_t seed,
                                         const std::vector<PlannedMove>& moves) {
  runtime::SimExecutor sim;
  sim::Cluster cluster(&sim, 5);
  broker::Broker broker({0});
  broker.CreateTopic("events", kPartitions);
  EngineOptions opts;
  opts.num_key_groups = 64;
  opts.vnodes_per_instance = 4;
  Engine engine(&sim, &cluster, &broker, opts);
  lsm::MemEnv env;

  // Per-run trace on the simulated clock, with the per-batch data-event
  // firehose on: the shape assertions below need to see every delivery.
  obs::Observability obs;
  obs.SetClock([&sim] { return sim.Now(); });
  obs.trace().set_data_events(true);
  engine.SetObservability(&obs);

  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", kParallelism, {"src"},
                   [&env](Engine* eng, int subtask, int node) {
                     auto backend = state::LsmStateBackend::Open(
                         &env, "/state/c" + std::to_string(subtask), "counter",
                         static_cast<uint32_t>(subtask));
                     RHINO_CHECK(backend.ok());
                     return std::make_unique<KeyedCounterOperator>(
                         eng, "counter", subtask, node, ProcessingProfile(),
                         std::move(backend).MoveValue());
                   })
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine, def, {1, 2, 3, 4});

  DelayedDelegate delegate(&sim, static_cast<SimTime>(seed % 7) * 10 *
                                     kMillisecond);
  engine.SetHandoverDelegate(&delegate);

  std::map<uint64_t, uint64_t> counts;
  graph->sinks("sink")[0]->SetCollector([&](const Record& r) {
    uint64_t c = std::stoull(r.payload);
    if (c > counts[r.key]) counts[r.key] = c;
  });
  graph->StartSources();

  // The record schedule is derived purely from the seed so the golden and
  // reconfigured runs see identical inputs.
  Random workload(seed);
  uint64_t handover_id = 1;
  for (int wave = 0; wave < kWaves; ++wave) {
    for (int i = 0; i < kKeysPerWave; ++i) {
      uint64_t key = workload.Uniform(40);
      Batch batch;
      batch.create_time = sim.Now();
      batch.count = 1;
      batch.bytes = 8;
      batch.records.push_back(Record{key, sim.Now(), 8, "x"});
      broker.topic("events")
          .partition(static_cast<int>(key) % kPartitions)
          .Append(std::move(batch));
    }
    for (const PlannedMove& planned : moves) {
      if (planned.wave != wave) continue;
      auto vnodes = engine.routing("counter")->VnodesOfInstance(planned.origin);
      if (vnodes.empty()) continue;  // origin already drained by a prior move
      size_t take = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(vnodes.size()) *
                                 planned.fraction));
      vnodes.resize(std::min(take, vnodes.size()));
      auto spec = std::make_shared<HandoverSpec>();
      spec->id = handover_id++;
      spec->operator_name = "counter";
      spec->moves = {HandoverMove{planned.origin, planned.target, vnodes}};
      engine.StartHandover(spec);
    }
    sim.RunUntil(sim.Now() + kSecond);
  }
  sim.Run();

  // Finite completion (Theorem 1, part 2).
  for (const auto& record : engine.handovers()) {
    EXPECT_TRUE(record.completed) << "handover " << record.spec->id;
  }

  // Trace-shape form of exactly-once (stronger than comparing end states):
  // while an instance holds alignment for a handover (buffering_hold span),
  // no record may be delivered to it on the same scope.
  const obs::TraceLog& trace = obs.trace();
  for (const obs::TraceEvent* hold : trace.Spans("handover", "buffering_hold")) {
    EXPECT_FALSE(hold->is_open())
        << "hold never released on " << hold->scope;
    for (const obs::TraceEvent* d : trace.Select("data", "deliver")) {
      if (d->scope != hold->scope) continue;
      EXPECT_FALSE(hold->time_us < d->time_us && d->time_us < hold->end_us())
          << "record delivered to " << d->scope << " at t=" << d->time_us
          << " inside hold [" << hold->time_us << ", " << hold->end_us()
          << ") of handover " << hold->id;
    }
  }
  // Every alignment resolved (no orphaned marker alignments), and every
  // completed handover shows up as a closed engine-level span.
  for (const obs::TraceEvent* align : trace.Spans("align")) {
    EXPECT_FALSE(align->is_open()) << align->scope << " id " << align->id;
  }
  size_t completed = 0;
  for (const auto& record : engine.handovers()) {
    if (record.completed) ++completed;
  }
  EXPECT_EQ(trace.Spans("handover", "handover").size(), completed);
  if (!moves.empty() && completed > 0) {
    // A handover that moved vnodes must have rewired at least one gate
    // before releasing the buffered records.
    EXPECT_GT(trace.Count("handover", "rewire"), 0u);
  }
  return counts;
}

class HandoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HandoverPropertyTest, ReconfiguredRunEqualsGoldenRun) {
  uint64_t seed = GetParam();
  Random plan(seed * 7919 + 13);
  std::vector<PlannedMove> moves;
  int num_moves = 1 + static_cast<int>(plan.Uniform(3));
  for (int i = 0; i < num_moves; ++i) {
    PlannedMove m;
    m.wave = 1 + static_cast<int>(plan.Uniform(kWaves - 2));
    m.origin = static_cast<uint32_t>(plan.Uniform(kParallelism));
    do {
      m.target = static_cast<uint32_t>(plan.Uniform(kParallelism));
    } while (m.target == m.origin);
    m.fraction = plan.OneIn(3) ? 1.0 : 0.5;  // whole-instance or half moves
    moves.push_back(m);
  }

  auto golden = RunSchedule(seed, {});
  auto reconfigured = RunSchedule(seed, moves);
  EXPECT_EQ(reconfigured, golden) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandoverPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace rhino::dataflow
