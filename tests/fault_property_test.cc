// Property-based fault-injection tests: sweep the crash instant across an
// *entire* replication-chain transfer and an *entire* handover, asserting
// that for every injection instant
//
//   * every `done` callback fires exactly once with a definite Status
//     (never hangs, never double-fires),
//   * the replica catalog never advertises copies on dead nodes,
//   * every handover converges (completes) despite the crash, and
//   * keyed results remain exactly-once after recovery.
//
// Plus the catch-up criterion: after a replica-holding worker dies, the
// substitute group member reaches latest_checkpoint_id parity with the
// newest live copy without waiting for another checkpoint.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/sim_executor.h"
#include "sim/fault_injector.h"
#include "state/lsm_state_backend.h"

namespace rhino::rhino {
namespace {

using dataflow::Batch;
using dataflow::Engine;
using dataflow::EngineOptions;
using dataflow::ExecutionGraph;
using dataflow::ProcessingProfile;
using dataflow::QueryDef;
using dataflow::Record;

// ------------------------------------------ replication chain crash sweep --

sim::NodeSpec FastSpec() {
  sim::NodeSpec spec;
  spec.net_bytes_per_sec = 1e9;
  spec.disk_write_bytes_per_sec = 1e9;
  spec.net_latency = 0;
  return spec;
}

state::CheckpointDescriptor ChainDesc(uint64_t id, uint64_t delta) {
  state::CheckpointDescriptor desc;
  desc.checkpoint_id = id;
  desc.operator_name = "op";
  desc.instance_id = 0;
  desc.files = {{"base", 0}, {"delta-" + std::to_string(id), delta}};
  desc.delta_files = {{"delta-" + std::to_string(id), delta}};
  return desc;
}

struct ChainOutcome {
  int done_count = 0;
  std::optional<Status> status;
  SimTime completed_at = 0;
};

/// One chain transfer with a crash of `victim` at `crash_time` (victim < 0
/// = fault-free). All protocol invariants are asserted inside.
ChainOutcome RunChainTransfer(SimTime crash_time, int victim) {
  runtime::SimExecutor sim;
  sim::Cluster cluster(&sim, 4, FastSpec());
  ReplicationManager rm({0, 1, 2, 3}, /*r=*/2);
  rm.BuildGroups({{"op", 0, 0, 100}});
  ReplicationRuntime runtime(&cluster, &rm);
  sim::FaultInjector injector(&sim, &cluster, /*seed=*/1);
  if (victim >= 0) injector.CrashAt(crash_time, victim);

  ChainOutcome outcome;
  runtime.ReplicateCheckpoint("op", 0, /*primary_node=*/0,
                              ChainDesc(1, 64 * kMiB),
                              {{0, "blob0"}, {1, "blob1"}}, [&](Status st) {
                                ++outcome.done_count;
                                outcome.status = st;
                                outcome.completed_at = sim.Now();
                              });
  sim.Run();

  // The simulation drained and the callback fired exactly once with a
  // definite status — a hang would leave done_count at 0.
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(outcome.done_count, 1)
      << "crash_time=" << crash_time << " victim=" << victim;
  EXPECT_TRUE(outcome.status.has_value());

  // Dead nodes never advertise replicas.
  if (victim >= 0) {
    EXPECT_EQ(runtime.ReplicaOn("op", 0, victim), nullptr)
        << "dead node " << victim << " still advertised";
  }
  // A successful transfer left full copies on every live group member.
  if (outcome.status.has_value() && outcome.status->ok()) {
    for (int node : rm.Group("op", 0)) {
      if (node == victim) continue;
      const ReplicaState* rep = runtime.ReplicaOn("op", 0, node);
      EXPECT_NE(rep, nullptr) << "node " << node;
      if (rep != nullptr) {
        EXPECT_EQ(rep->latest_checkpoint_id, 1u);
      }
    }
  } else {
    EXPECT_GE(runtime.transfers_aborted(), 1u);
  }
  return outcome;
}

TEST(ReplicationChainCrashSweep, EveryInstantEveryVictimConverges) {
  // Fault-free baseline gives the sweep window.
  ChainOutcome baseline = RunChainTransfer(0, /*victim=*/-1);
  ASSERT_TRUE(baseline.status.has_value() && baseline.status->ok());
  SimTime duration = baseline.completed_at;
  ASSERT_GT(duration, 0);

  // Victims: both chain members and the primary itself; instants sweep
  // from before the first chunk to past completion.
  runtime::SimExecutor probe_sim;
  sim::Cluster probe_cluster(&probe_sim, 4, FastSpec());
  ReplicationManager probe_rm({0, 1, 2, 3}, 2);
  probe_rm.BuildGroups({{"op", 0, 0, 100}});
  std::vector<int> victims = probe_rm.Group("op", 0);
  victims.push_back(0);  // the primary

  constexpr int kSteps = 24;
  for (int victim : victims) {
    for (int step = 0; step <= kSteps; ++step) {
      SimTime t = duration * step / (kSteps - 2);  // overshoots the end
      SCOPED_TRACE("victim=" + std::to_string(victim) +
                   " t=" + std::to_string(t));
      ChainOutcome outcome = RunChainTransfer(t, victim);
      // Crashes strictly after completion must not retroactively fail it.
      if (t > duration) {
        EXPECT_TRUE(outcome.status->ok());
      }
    }
  }
}

// -------------------------------------------------- full-stack test rig ----

/// Engine + replication + Rhino storage + handover manager + injector over
/// a 5-node cluster (node 0 = broker, 1-4 = workers).
struct RhinoStack {
  static constexpr int kPartitions = 2;

  runtime::SimExecutor sim;
  sim::Cluster cluster;
  broker::Broker broker;
  lsm::MemEnv env;
  Engine engine;
  ReplicationManager rm;
  ReplicationRuntime runtime;
  RhinoCheckpointStorage storage;
  HandoverManager hm;
  sim::FaultInjector injector;
  std::unique_ptr<ExecutionGraph> graph;
  std::map<uint64_t, uint64_t> counts;

  explicit RhinoStack(int replication_factor = 1, uint64_t seed = 42)
      : cluster(&sim, 5),
        broker({0}),
        engine(&sim, &cluster, &broker, SmallEngineOptions()),
        rm({1, 2, 3, 4}, replication_factor),
        runtime(&cluster, &rm),
        storage(&cluster, &runtime),
        hm(&engine, &rm, &runtime),
        injector(&sim, &cluster, seed) {
    broker.CreateTopic("events", kPartitions);
    engine.SetCheckpointStorage(&storage);
    // A crash fail-stops the node engine-wide, then the coordinator
    // notices and recovers after a detection delay.
    injector.SetCrashHandler([this](int node) {
      engine.FailNode(node);
      sim.Schedule(200 * kMillisecond,
                   [this, node] { hm.RecoverFailedNode(node); });
    });
  }

  static EngineOptions SmallEngineOptions() {
    EngineOptions opts;
    opts.num_key_groups = 64;
    opts.vnodes_per_instance = 2;
    return opts;
  }

  void BuildCounterQuery(int parallelism = 4) {
    QueryDef def;
    def.AddSource("src", "events", kPartitions)
        .AddStateful("counter", parallelism, {"src"},
                     [this](Engine* eng, int subtask, int node) {
                       auto backend = state::LsmStateBackend::Open(
                           &env, "/state/c" + std::to_string(subtask),
                           "counter", static_cast<uint32_t>(subtask));
                       RHINO_CHECK(backend.ok());
                       return std::make_unique<dataflow::KeyedCounterOperator>(
                           eng, "counter", subtask, node, ProcessingProfile(),
                           std::move(backend).MoveValue());
                     })
        .AddSink("sink", 1, {"counter"});
    graph = ExecutionGraph::Build(&engine, def, {1, 2, 3, 4});
    graph->sinks("sink")[0]->SetCollector([this](const Record& r) {
      uint64_t c = std::stoull(r.payload);
      if (c > counts[r.key]) counts[r.key] = c;
    });
    std::vector<InstanceInfo> infos;
    for (auto* inst : graph->stateful("counter")) {
      infos.push_back({"counter", static_cast<uint32_t>(inst->subtask()),
                       inst->node_id(), 1});
    }
    rm.BuildGroups(infos);
    graph->StartSources();
  }

  void ProduceWave(uint64_t keys) {
    for (uint64_t key = 0; key < keys; ++key) {
      Batch batch;
      batch.create_time = sim.Now();
      batch.count = 1;
      batch.bytes = 8;
      batch.records.push_back(Record{key, sim.Now(), 8, "x"});
      broker.topic("events")
          .partition(static_cast<int>(key) % kPartitions)
          .Append(std::move(batch));
    }
  }
};

// ------------------------------------------------- handover crash sweep ----

/// One full run: two waves, a checkpoint, a load-balance handover with a
/// crash `crash_offset` after its trigger, recovery, and a final wave.
/// Returns false (with test failures recorded) when any invariant broke.
void RunHandoverCrashRun(SimTime crash_offset, bool crash_origin) {
  // r=2: surviving an arbitrary single-node crash requires two secondaries —
  // with r=1 the sole copy of a moved vnode can land (by checkpoint-time
  // placement) on the very node the sweep kills, which no protocol recovers.
  RhinoStack stack(/*replication_factor=*/2);
  stack.BuildCounterQuery();
  stack.ProduceWave(30);
  stack.sim.RunUntil(stack.sim.Now() + 2 * kSecond);
  stack.engine.TriggerCheckpoint();
  stack.sim.RunUntil(stack.sim.Now() + 2 * kSecond);
  ASSERT_NE(stack.engine.LastCompletedCheckpoint(), nullptr);
  stack.ProduceWave(30);
  stack.sim.RunUntil(stack.sim.Now() + 2 * kSecond);

  int victim = crash_origin ? stack.graph->stateful("counter")[0]->node_id()
                            : stack.graph->stateful("counter")[1]->node_id();
  stack.hm.TriggerLoadBalance("counter", 0, 1, 1.0);
  stack.injector.CrashAfter(crash_offset, victim);
  stack.sim.RunUntil(stack.sim.Now() + 10 * kSecond);

  stack.ProduceWave(30);
  stack.sim.Run();

  // Convergence: every handover (the load balance *and* the recovery)
  // completed — i.e. every transfer's done callback fired.
  for (const auto& record : stack.engine.handovers()) {
    EXPECT_TRUE(record.completed)
        << "handover " << record.spec->id << " wedged (crash_offset="
        << crash_offset << " victim=" << victim << ")";
  }
  // Exactly-once: every key was produced three times.
  for (uint64_t key = 0; key < 30; ++key) {
    EXPECT_EQ(stack.counts[key], 3u)
        << "key " << key << " crash_offset=" << crash_offset
        << " crash_origin=" << crash_origin;
  }
  // Every vnode ended up owned by a live instance.
  auto* table = stack.engine.routing("counter");
  for (uint32_t v = 0; v < table->map().num_vnodes(); ++v) {
    uint32_t inst = table->InstanceForVnode(v);
    EXPECT_FALSE(stack.graph->stateful("counter")[inst]->halted())
        << "vnode " << v << " owned by dead instance " << inst;
  }
  // Dead nodes advertise nothing.
  for (uint32_t sub = 0; sub < 4; ++sub) {
    EXPECT_EQ(stack.runtime.ReplicaOn("counter", sub, victim), nullptr);
  }
}

class HandoverCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(HandoverCrashSweep, TargetNodeCrash) {
  // The handover spans marker propagation through state transfer; sweep
  // the crash from the trigger instant to well past completion.
  SimTime offset = static_cast<SimTime>(GetParam()) * 100 * kMillisecond;
  RunHandoverCrashRun(offset, /*crash_origin=*/false);
}

TEST_P(HandoverCrashSweep, OriginNodeCrash) {
  SimTime offset = static_cast<SimTime>(GetParam()) * 100 * kMillisecond;
  RunHandoverCrashRun(offset, /*crash_origin=*/true);
}

INSTANTIATE_TEST_SUITE_P(Instants, HandoverCrashSweep,
                         ::testing::Range(0, 12));

// ---------------------------------------------------- catch-up criterion --

TEST(CatchUpReplication, SubstituteReachesCheckpointParity) {
  RhinoStack stack(/*replication_factor=*/2);
  stack.BuildCounterQuery();
  stack.ProduceWave(40);
  stack.sim.RunUntil(stack.sim.Now() + 2 * kSecond);
  stack.engine.TriggerCheckpoint();
  stack.sim.Run();
  const auto* ckpt = stack.engine.LastCompletedCheckpoint();
  ASSERT_NE(ckpt, nullptr);

  // Kill a worker that holds secondary copies (any group member of
  // instance 0) and recover.
  int victim = stack.rm.Group("counter", 0)[0];
  stack.engine.FailNode(victim);
  auto handovers = stack.hm.RecoverFailedNode(victim);
  stack.sim.Run();

  for (const auto& record : stack.engine.handovers()) {
    EXPECT_TRUE(record.completed);
  }
  // The repair replaced the dead member and the catch-up transfer brought
  // the substitute to checkpoint parity — r=2 is restored *before* the
  // next checkpoint runs.
  EXPECT_GE(stack.runtime.catchup_transfers(), 1u);
  EXPECT_GT(stack.runtime.catchup_bytes(), 0u);
  EXPECT_TRUE(stack.rm.degraded_groups().empty());
  for (auto* inst : stack.graph->stateful("counter")) {
    if (inst->halted()) continue;
    auto sub = static_cast<uint32_t>(inst->subtask());
    const auto& group = stack.rm.Group("counter", sub);
    EXPECT_EQ(group.size(), 2u);
    for (int node : group) {
      EXPECT_TRUE(stack.cluster.node(node).alive());
      const ReplicaState* rep = stack.runtime.ReplicaOn("counter", sub, node);
      ASSERT_NE(rep, nullptr)
          << "counter#" << sub << " has no copy on group node " << node;
      EXPECT_EQ(rep->latest_checkpoint_id, ckpt->id)
          << "substitute for counter#" << sub << " lags on node " << node;
    }
  }
}

// -------------------------------------------- event-armed crash schedule ---

TEST(EventArmedCrash, KthCheckpointAndMidChain) {
  RhinoStack stack;
  stack.BuildCounterQuery();
  // Crash worker 3 on the 2nd checkpoint trigger, and (cascading) worker 4
  // three chunks into a subsequent replication transfer.
  stack.engine.SetFaultProbe(
      [&](const std::string& e) { stack.injector.Notify(e); });
  stack.runtime.SetFaultProbe(
      [&](const std::string& e) { stack.injector.Notify(e); });
  stack.injector.CrashOnEvent("checkpoint_trigger", 2, 3);

  stack.ProduceWave(30);
  stack.sim.RunUntil(stack.sim.Now() + 2 * kSecond);
  stack.engine.TriggerCheckpoint();  // #1: completes normally
  stack.sim.RunUntil(stack.sim.Now() + 2 * kSecond);
  stack.ProduceWave(30);
  stack.sim.RunUntil(stack.sim.Now() + 2 * kSecond);
  stack.engine.TriggerCheckpoint();  // #2: fires the crash
  stack.sim.RunUntil(stack.sim.Now() + 10 * kSecond);

  EXPECT_TRUE(stack.injector.crashed(3));
  EXPECT_EQ(stack.injector.EventCount("checkpoint_trigger"), 2u);

  stack.ProduceWave(30);
  stack.sim.Run();
  for (const auto& record : stack.engine.handovers()) {
    EXPECT_TRUE(record.completed);
  }
  for (uint64_t key = 0; key < 30; ++key) {
    EXPECT_EQ(stack.counts[key], 3u) << "key " << key;
  }
}

}  // namespace
}  // namespace rhino::rhino
