#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "lsm/env.h"
#include "lsm/log_format.h"
#include "net/frame.h"
#include "net/pipeline.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/replication_runtime.h"

/// \file net_test.cc
/// The networked substrate in isolation: socket error contract, frame
/// robustness (truncated / corrupt / oversized / mid-message disconnect on
/// BOTH sides), RPC request/reply incl. reconnect-after-restart, and wire
/// serialization round trips with prefix-truncation fuzzing.
///
/// Everything binds port 0 (kernel-assigned), so parallel test shards
/// never collide.

namespace rhino::net {
namespace {

/// A listener + one accepted connection, paired with a client socket.
struct SocketPair {
  Socket listener;
  Socket server;  // accepted side
  Socket client;  // connecting side

  static SocketPair Make() {
    SocketPair p;
    auto listen = Socket::Listen("127.0.0.1", 0);
    EXPECT_TRUE(listen.ok()) << listen.status().ToString();
    p.listener = std::move(listen).MoveValue();
    auto client = Socket::Connect("127.0.0.1", p.listener.local_port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    p.client = std::move(client).MoveValue();
    auto server = p.listener.Accept();
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    p.server = std::move(server).MoveValue();
    return p;
  }
};

TEST(SocketTest, PortZeroGetsKernelAssignedPort) {
  auto listen = Socket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok()) << listen.status().ToString();
  EXPECT_NE(listen->local_port(), 0);
}

TEST(SocketTest, ConnectToClosedPortIsError) {
  // Bind a port, close the listener, then connect to the now-dead port.
  uint16_t dead_port;
  {
    auto listen = Socket::Listen("127.0.0.1", 0);
    ASSERT_TRUE(listen.ok());
    dead_port = listen->local_port();
  }
  auto conn = Socket::Connect("127.0.0.1", dead_port);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kIOError);
}

TEST(SocketTest, CleanPeerCloseIsAborted) {
  auto p = SocketPair::Make();
  p.client.Close();
  char buf[1];
  Status st = p.server.ReadExact(buf, 1);
  EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
}

TEST(SocketTest, MidMessageDisconnectIsIOError) {
  auto p = SocketPair::Make();
  ASSERT_TRUE(p.client.WriteAll("abc").ok());
  p.client.Close();
  char buf[8];
  Status st = p.server.ReadExact(buf, 8);  // wants 8, peer sent 3 and died
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
}

TEST(SocketTest, RecvTimeoutIsTimedOut) {
  auto p = SocketPair::Make();
  ASSERT_TRUE(p.server.SetRecvTimeout(50).ok());
  char buf[1];
  Status st = p.server.ReadExact(buf, 1);
  EXPECT_EQ(st.code(), StatusCode::kTimedOut) << st.ToString();
}

TEST(SocketTest, DataPlaneSocketsHaveNoDelay) {
  // Both ends of every data-plane connection must disable Nagle: a
  // pipelined window of small frames would otherwise sit in the kernel
  // waiting for acks.
  auto p = SocketPair::Make();
  EXPECT_TRUE(p.client.nodelay());
  EXPECT_TRUE(p.server.nodelay());
  // The seam is real: the option can be flipped and read back.
  ASSERT_TRUE(p.client.SetNoDelay(false).ok());
  EXPECT_FALSE(p.client.nodelay());
  ASSERT_TRUE(p.client.SetNoDelay(true).ok());
  EXPECT_TRUE(p.client.nodelay());
}

TEST(ParseEndpointTest, RoundTripAndErrors) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseEndpoint("127.0.0.1:8080", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_EQ(FormatEndpoint(host, port), "127.0.0.1:8080");
  EXPECT_FALSE(ParseEndpoint("no-port", &host, &port).ok());
  EXPECT_FALSE(ParseEndpoint("h:99999", &host, &port).ok());
  EXPECT_FALSE(ParseEndpoint("h:abc", &host, &port).ok());
}

// ------------------------------------------------------------- framing --

TEST(FrameTest, RoundTrip) {
  auto p = SocketPair::Make();
  std::string payload(100000, 'x');
  payload += "tail";
  ASSERT_TRUE(WriteFrame(p.client, payload).ok());
  std::string got;
  ASSERT_TRUE(ReadFrame(p.server, &got).ok());
  EXPECT_EQ(got, payload);
}

TEST(FrameTest, TruncatedPayloadIsIOError) {
  auto p = SocketPair::Make();
  // Header promises 100 bytes; only 10 arrive before the peer dies.
  std::string framed;
  lsm::AppendLogRecord(&framed, std::string(100, 'x'));
  ASSERT_TRUE(p.client.WriteAll(framed.substr(0, 8 + 10)).ok());
  p.client.Close();
  std::string got;
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
}

TEST(FrameTest, TruncatedHeaderIsIOError) {
  auto p = SocketPair::Make();
  ASSERT_TRUE(p.client.WriteAll("abc").ok());  // 3 of 8 header bytes
  p.client.Close();
  std::string got;
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
}

TEST(FrameTest, CleanCloseBetweenFramesIsAborted) {
  auto p = SocketPair::Make();
  ASSERT_TRUE(WriteFrame(p.client, "one").ok());
  p.client.Close();
  std::string got;
  ASSERT_TRUE(ReadFrame(p.server, &got).ok());
  EXPECT_EQ(got, "one");
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
}

TEST(FrameTest, CorruptChecksumIsCorruption) {
  auto p = SocketPair::Make();
  std::string framed;
  lsm::AppendLogRecord(&framed, "payload");
  framed[0] ^= 0x5a;  // flip checksum bits
  ASSERT_TRUE(p.client.WriteAll(framed).ok());
  std::string got;
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST(FrameTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  auto p = SocketPair::Make();
  // A garbage header claiming ~4 GiB. ReadFrame must fail on the length
  // check alone — it never waits for (or allocates) the claimed bytes.
  char header[8];
  uint32_t crc = 0xdeadbeef, len = 0xfffffff0;
  std::memcpy(header, &crc, 4);
  std::memcpy(header + 4, &len, 4);
  ASSERT_TRUE(p.client.WriteAll(std::string_view(header, 8)).ok());
  std::string got;
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();

  // Same with a caller-tightened limit: 1 byte over is rejected.
  ASSERT_TRUE(WriteFrame(p.client, std::string(65, 'x')).ok());
  st = ReadFrame(p.server, &got, /*max_frame_bytes=*/64);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

// ------------------------------------------------------------------ rpc --

RpcClientOptions FastRetryOptions() {
  RpcClientOptions options;
  options.retry.initial_backoff_us = 1000;  // 1ms: keep tests snappy
  options.retry.max_backoff_us = 10000;
  options.retry.max_attempts = 4;
  return options;
}

TEST(RpcTest, EchoAndApplicationError) {
  RpcServer server([](MessageType type, std::string_view body) -> Result<std::string> {
    if (type == MessageType::kStats) {
      return Status::FailedPrecondition("stats refused");
    }
    return std::string(body);
  });
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  RpcClient client("127.0.0.1", server.port(), FastRetryOptions(), "test");
  std::string reply;
  ASSERT_TRUE(client.Call(MessageType::kHello, "ping", &reply).ok());
  EXPECT_EQ(reply, "ping");
  // Application errors are not transport errors: no retry, code preserved.
  Status st = client.Call(MessageType::kStats, "", &reply);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(st.message(), "stats refused");
}

TEST(RpcTest, ServerSurvivesGarbageBytes) {
  std::atomic<int> served{0};
  RpcServer server([&](MessageType, std::string_view body) -> Result<std::string> {
    ++served;
    return std::string(body);
  });
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  {  // Raw garbage that is not even a frame header.
    auto conn = Socket::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->WriteAll("total garbage, not a frame").ok());
    conn->Close();
  }
  {  // A valid frame whose payload is not a request envelope.
    auto conn = Socket::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(*conn, "\xff").ok());
    // The server answers on seq 0 with an error (or closes); either way it
    // must not crash or hang.
    conn->SetRecvTimeout(2000);
    std::string got;
    (void)ReadFrame(*conn, &got);
  }
  {  // A frame with an oversized length prefix.
    auto conn = Socket::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    char header[8];
    uint32_t crc = 1, len = 0xffffff00;
    std::memcpy(header, &crc, 4);
    std::memcpy(header + 4, &len, 4);
    ASSERT_TRUE(conn->WriteAll(std::string_view(header, 8)).ok());
    conn->Close();
  }

  // After all that abuse, a well-formed client still gets service.
  RpcClient client("127.0.0.1", server.port(), FastRetryOptions(), "test");
  std::string reply;
  ASSERT_TRUE(client.Call(MessageType::kHello, "still alive", &reply).ok());
  EXPECT_EQ(reply, "still alive");
  EXPECT_GE(served.load(), 1);
}

TEST(RpcTest, ClientSurvivesGarbageReply) {
  // A hand-rolled "server" that answers every frame with a corrupt one.
  auto listen = Socket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok());
  ASSERT_TRUE(listen->SetRecvTimeout(500).ok());  // bounded accept waits
  uint16_t port = listen->local_port();
  std::thread server([listener = std::move(listen).MoveValue()]() mutable {
    for (int i = 0; i < 8; ++i) {  // serve a few connections, then quit
      auto conn = listener.Accept();
      if (!conn.ok()) return;
      conn->SetRecvTimeout(2000);
      std::string frame;
      if (!ReadFrame(*conn, &frame).ok()) continue;
      std::string garbage;
      lsm::AppendLogRecord(&garbage, "\x01\x02not an envelope");
      (void)conn->WriteAll(garbage);
    }
  });
  RpcClientOptions options = FastRetryOptions();
  options.retry.max_attempts = 2;
  RpcClient client("127.0.0.1", port, options, "test");
  std::string reply;
  Status st = client.Call(MessageType::kHello, "hi", &reply);
  EXPECT_FALSE(st.ok());  // corrupt reply is an error, never a hang/crash
  server.join();
}

TEST(RpcTest, ClientReconnectsAfterServerRestart) {
  auto handler = [](MessageType, std::string_view body) -> Result<std::string> {
    return std::string(body);
  };
  auto server = std::make_unique<RpcServer>(handler);
  ASSERT_TRUE(server->Start("127.0.0.1", 0).ok());
  uint16_t port = server->port();

  RpcClient client("127.0.0.1", port, FastRetryOptions(), "test");
  std::string reply;
  ASSERT_TRUE(client.Call(MessageType::kHello, "before", &reply).ok());

  // Restart the server on the same port (SO_REUSEADDR): the client's
  // cached connection is now stale, so the next call must transparently
  // reconnect via its whole-call retry.
  server->Stop();
  server = std::make_unique<RpcServer>(handler);
  ASSERT_TRUE(server->Start("127.0.0.1", port).ok());
  ASSERT_TRUE(client.Call(MessageType::kHello, "after", &reply).ok());
  EXPECT_EQ(reply, "after");
}

TEST(RpcTest, DeadEndpointFailsFastWithExhaustedRetries) {
  uint16_t dead_port;
  {
    auto listen = Socket::Listen("127.0.0.1", 0);
    ASSERT_TRUE(listen.ok());
    dead_port = listen->local_port();
  }
  RpcClient client("127.0.0.1", dead_port, FastRetryOptions(), "test");
  Status st = client.Call(MessageType::kStats, "", nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("gave up after"), std::string::npos)
      << st.ToString();
}

// ------------------------------------------------------- wire round trips --

dataflow::Batch MakeBatch() {
  dataflow::Batch batch;
  batch.create_time = 123456;
  batch.source_id = 3;
  batch.source_offset = 42;
  for (uint64_t k = 0; k < 5; ++k) {
    dataflow::Record rec;
    rec.key = k * 1000 + 7;
    rec.event_time = 1000 + static_cast<SimTime>(k);
    rec.size = 32;
    rec.payload = "payload-" + std::to_string(k);
    batch.records.push_back(rec);
    batch.count += 1;
    batch.bytes += rec.size;
  }
  return batch;
}

dataflow::ControlEvent MakeHandoverMarker() {
  auto spec = std::make_shared<dataflow::HandoverSpec>();
  spec->id = 9;
  spec->operator_name = "counter";
  spec->origin_failed = true;
  spec->moves.push_back(dataflow::HandoverMove{0, 2, {1, 3, 5}});
  spec->moves.push_back(dataflow::HandoverMove{1, 2, {7}});
  dataflow::ControlEvent ev;
  ev.type = dataflow::ControlEvent::Type::kHandoverMarker;
  ev.id = 9;
  ev.handover = spec;
  return ev;
}

/// Every strict prefix of a valid encoding must decode to an error (or,
/// for a handful of self-delimiting prefixes, a success) — never crash,
/// never read out of bounds. ASan turns any violation into a test failure.
template <typename DecodeFn>
void FuzzPrefixes(const std::string& encoded, DecodeFn decode) {
  for (size_t len = 0; len < encoded.size(); ++len) {
    (void)decode(std::string_view(encoded).substr(0, len));
  }
}

TEST(WireTest, BatchRoundTripAndTruncationFuzz) {
  dataflow::Batch batch = MakeBatch();
  std::string encoded;
  EncodeBatch(batch, &encoded);
  auto decoded = DecodeBatch(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->create_time, batch.create_time);
  EXPECT_EQ(decoded->source_id, batch.source_id);
  EXPECT_EQ(decoded->source_offset, batch.source_offset);
  ASSERT_EQ(decoded->records.size(), batch.records.size());
  for (size_t i = 0; i < batch.records.size(); ++i) {
    EXPECT_EQ(decoded->records[i].key, batch.records[i].key);
    EXPECT_EQ(decoded->records[i].payload, batch.records[i].payload);
  }
  FuzzPrefixes(encoded, DecodeBatch);
  // Trailing garbage is Corruption, not silent acceptance.
  EXPECT_EQ(DecodeBatch(encoded + "x").status().code(),
            StatusCode::kCorruption);
}

TEST(WireTest, ControlEventRoundTripAndTruncationFuzz) {
  dataflow::ControlEvent ev = MakeHandoverMarker();
  std::string encoded;
  EncodeControlEvent(ev, &encoded);
  auto decoded = DecodeControlEvent(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, ev.type);
  EXPECT_EQ(decoded->id, ev.id);
  ASSERT_NE(decoded->handover, nullptr);
  EXPECT_EQ(decoded->handover->operator_name, "counter");
  EXPECT_TRUE(decoded->handover->origin_failed);
  ASSERT_EQ(decoded->handover->moves.size(), 2u);
  EXPECT_EQ(decoded->handover->moves[0].vnodes,
            (std::vector<uint32_t>{1, 3, 5}));
  FuzzPrefixes(encoded, DecodeControlEvent);

  // A plain barrier has no spec attached.
  dataflow::ControlEvent barrier;
  barrier.id = 4;
  encoded.clear();
  EncodeControlEvent(barrier, &encoded);
  auto barrier2 = DecodeControlEvent(encoded);
  ASSERT_TRUE(barrier2.ok());
  EXPECT_EQ(barrier2->handover, nullptr);
  EXPECT_EQ(barrier2->id, 4u);
}

TEST(WireTest, EnvelopesRoundTripAndRejectJunk) {
  RequestEnvelope req;
  req.type = MessageType::kProcessBatch;
  req.seq = 77;
  req.body = "body-bytes";
  std::string encoded;
  req.EncodeTo(&encoded);
  auto decoded = RequestEnvelope::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MessageType::kProcessBatch);
  EXPECT_EQ(decoded->seq, 77u);
  EXPECT_EQ(decoded->body, "body-bytes");
  EXPECT_FALSE(RequestEnvelope::Decode("\xff junk").ok());

  ReplyEnvelope rep;
  rep.seq = 77;
  rep.code = StatusCode::kNotFound;
  rep.message = "nope";
  rep.body = "partial";
  encoded.clear();
  rep.EncodeTo(&encoded);
  auto decoded2 = ReplyEnvelope::Decode(encoded);
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2->ToStatus().code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded2->body, "partial");
  FuzzPrefixes(encoded, ReplyEnvelope::Decode);
}

TEST(WireTest, EnvelopeVersionByteIsChecked) {
  RequestEnvelope req;
  req.type = MessageType::kProcessBatch;
  req.seq = 9;
  req.body = "b";
  std::string encoded;
  req.EncodeTo(&encoded);
  ASSERT_GE(encoded.size(), 2u);
  std::string bad = encoded;
  bad[1] = static_cast<char>(kWireVersion + 1);  // version follows type
  EXPECT_EQ(RequestEnvelope::Decode(bad).status().code(),
            StatusCode::kCorruption);

  ReplyEnvelope rep;
  rep.seq = 9;
  rep.body = "r";
  encoded.clear();
  rep.EncodeTo(&encoded);
  ASSERT_GE(encoded.size(), 2u);
  bad = encoded;
  bad[1] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(ReplyEnvelope::Decode(bad).status().code(),
            StatusCode::kCorruption);
}

TEST(WireTest, EnvelopeByteMutationFuzz) {
  // Byte-granular: every single-byte corruption of a valid envelope must
  // decode to an error or a (different) well-formed envelope — never
  // crash or overread. ASan enforces the memory half.
  RequestEnvelope req;
  req.type = MessageType::kProcessBatch;
  req.seq = 1234567;
  req.body = "fuzz-body-abcdef";
  std::string encoded;
  req.EncodeTo(&encoded);
  FuzzPrefixes(encoded, RequestEnvelope::Decode);
  for (size_t i = 0; i < encoded.size(); ++i) {
    for (int mask : {0x01, 0x10, 0x80, 0xff}) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      (void)RequestEnvelope::Decode(mutated);
    }
  }

  ReplyEnvelope rep;
  rep.seq = 1234567;
  rep.code = StatusCode::kNotFound;
  rep.message = "nope";
  rep.body = "fuzz-reply-body";
  encoded.clear();
  rep.EncodeTo(&encoded);
  FuzzPrefixes(encoded, ReplyEnvelope::Decode);
  for (size_t i = 0; i < encoded.size(); ++i) {
    for (int mask : {0x01, 0x10, 0x80, 0xff}) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      (void)ReplyEnvelope::Decode(mutated);
    }
  }
}

TEST(WireTest, ReplicateStateStreamFieldsRoundTrip) {
  ReplicateStateRequest msg;
  msg.origin_node = 2;
  msg.op = "counter";
  msg.replica = "replica-bytes";
  msg.stream_seq = 99;
  msg.delta = 1;
  msg.dropped_vnodes = {3, 7, 11};
  std::string encoded;
  msg.EncodeTo(&encoded);
  auto decoded = ReplicateStateRequest::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->stream_seq, 99u);
  EXPECT_EQ(decoded->delta, 1);
  EXPECT_EQ(decoded->dropped_vnodes, msg.dropped_vnodes);
  FuzzPrefixes(encoded, ReplicateStateRequest::Decode);
}

TEST(WireTest, RequestBodiesRoundTripAndFuzz) {
  {
    HelloRequest msg;
    msg.node_id = 2;
    msg.successor = "127.0.0.1:9999";
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = HelloRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->successor, msg.successor);
    FuzzPrefixes(encoded, HelloRequest::Decode);
  }
  {
    AddOperatorRequest msg;
    msg.spec.kind = dataflow::OperatorKind::kSymmetricHashJoin;
    msg.spec.name = "join";
    msg.spec.num_vnodes = 16;
    msg.spec.input_arity = 2;
    msg.owned_vnodes = {0, 3, 6, 9};
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = AddOperatorRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->spec.kind, msg.spec.kind);
    EXPECT_EQ(decoded->spec.name, "join");
    EXPECT_EQ(decoded->spec.input_arity, 2u);
    EXPECT_EQ(decoded->owned_vnodes, msg.owned_vnodes);
    FuzzPrefixes(encoded, AddOperatorRequest::Decode);
  }
  {
    ProcessBatchRequest msg;
    msg.op = "counter";
    msg.side = 1;
    msg.return_outputs = 1;
    msg.batch = MakeBatch();
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = ProcessBatchRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->side, 1u);
    EXPECT_EQ(decoded->return_outputs, 1);
    EXPECT_EQ(decoded->batch.records.size(), msg.batch.records.size());
    FuzzPrefixes(encoded, ProcessBatchRequest::Decode);
  }
  {
    HandoverStateRequest msg;
    msg.control = MakeHandoverMarker();
    msg.move_index = 1;
    msg.replica = "replica-bytes";
    msg.durable = 1;
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = HandoverStateRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->move_index, 1u);
    EXPECT_EQ(decoded->replica, "replica-bytes");
    EXPECT_EQ(decoded->durable, 1);
    FuzzPrefixes(encoded, HandoverStateRequest::Decode);
  }
  {
    ReplicaFetchRequest msg;
    msg.origin_node = 3;
    msg.op = "counter";
    msg.vnodes = {1, 2};
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = ReplicaFetchRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->vnodes, msg.vnodes);
    FuzzPrefixes(encoded, ReplicaFetchRequest::Decode);
  }
}

TEST(WireTest, OperatorSpecRoundTripAndFuzz) {
  dataflow::OperatorSpec spec;
  spec.kind = dataflow::OperatorKind::kModeledState;
  spec.name = "modeled";
  spec.num_vnodes = 64;
  spec.input_arity = 1;
  spec.model.pattern = dataflow::StateModelConfig::Pattern::kSession;
  spec.model.state_bytes_per_input_byte = 2.5;
  spec.model.rmw_cap_bytes_per_vnode = 1024;
  spec.model.retention_us = 5'000'000;
  spec.model.output_selectivity = 0.125;
  spec.model.output_record_bytes = 48;
  std::string encoded;
  EncodeOperatorSpec(spec, &encoded);
  auto decoded = DecodeOperatorSpec(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, spec.kind);
  EXPECT_EQ(decoded->name, spec.name);
  EXPECT_EQ(decoded->num_vnodes, spec.num_vnodes);
  EXPECT_EQ(decoded->model.pattern, spec.model.pattern);
  EXPECT_DOUBLE_EQ(decoded->model.state_bytes_per_input_byte, 2.5);
  EXPECT_EQ(decoded->model.rmw_cap_bytes_per_vnode, 1024u);
  EXPECT_EQ(decoded->model.retention_us, 5'000'000);
  EXPECT_DOUBLE_EQ(decoded->model.output_selectivity, 0.125);
  EXPECT_EQ(decoded->model.output_record_bytes, 48u);
  FuzzPrefixes(encoded, DecodeOperatorSpec);
  // Single-byte corruption must never crash, and whatever it produces is
  // a Status, not garbage state.
  for (size_t i = 0; i < encoded.size(); ++i) {
    for (int mask : {0x01, 0x10, 0x80, 0xff}) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      (void)DecodeOperatorSpec(mutated);
    }
  }
}

TEST(WireTest, UnknownOperatorKindIsDecodableError) {
  dataflow::OperatorSpec spec;
  spec.name = "mystery";
  spec.num_vnodes = 8;
  std::string encoded;
  EncodeOperatorSpec(spec, &encoded);
  // The kind byte leads the encoding; forge a value no decoder knows.
  encoded[0] = static_cast<char>(0x7f);
  auto decoded = DecodeOperatorSpec(encoded);
  ASSERT_FALSE(decoded.ok());
  // InvalidArgument, not Corruption: the frame is intact, the request is
  // just not satisfiable — callers surface it verbatim to the driver.
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  AddOperatorRequest req;
  req.spec = spec;
  std::string body;
  req.EncodeTo(&body);
  // The nested spec string sits behind the envelope's length prefix.
  auto pos = body.find(encoded.substr(1));
  ASSERT_NE(pos, std::string::npos);
  body[pos - 1] = static_cast<char>(0x7f);
  auto bad = AddOperatorRequest::Decode(body);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, ReplicaStateRoundTripAndTruncationFuzz) {
  rhino::ReplicaState rs;
  rs.latest_checkpoint_id = 12;
  rs.latest_descriptor.checkpoint_id = 12;
  rs.latest_descriptor.operator_name = "counter";
  rs.latest_descriptor.instance_id = 1;
  rs.latest_descriptor.files = {{"000001.sst", 4096}, {"000002.sst", 512}};
  rs.latest_descriptor.delta_files = {{"000002.sst", 512}};
  rs.latest_descriptor.vnode_bytes = {{0, 128}, {5, 64}};
  rs.latest_descriptor.source_offsets = {{0, 10}, {1, 4}};
  rs.latest_descriptor.vnode_watermarks = {{0, {{0, 10}, {1, 4}}},
                                           {5, {{0, 9}}}};
  rs.vnode_blobs = {{0, "blob-zero"}, {5, std::string(1000, 'z')}};

  std::string encoded;
  rhino::EncodeReplicaState(rs, &encoded);
  auto decoded = rhino::DecodeReplicaState(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->latest_checkpoint_id, 12u);
  EXPECT_EQ(decoded->latest_descriptor.files, rs.latest_descriptor.files);
  EXPECT_EQ(decoded->latest_descriptor.vnode_watermarks,
            rs.latest_descriptor.vnode_watermarks);
  EXPECT_EQ(decoded->vnode_blobs, rs.vnode_blobs);
  FuzzPrefixes(encoded, rhino::DecodeReplicaState);
  EXPECT_EQ(rhino::DecodeReplicaState(encoded + "x").status().code(),
            StatusCode::kCorruption);
}

TEST(WireTest, TornCheckpointImageIsCorruption) {
  lsm::MemEnv env;
  rhino::ReplicaState rs;
  rs.latest_checkpoint_id = 3;
  rs.latest_descriptor.operator_name = "counter";
  rs.vnode_blobs = {{1, "some-state"}};
  ASSERT_TRUE(rhino::WriteCheckpointImage(&env, "/ckpt/img", rs).ok());
  auto loaded = rhino::ReadCheckpointImage(&env, "/ckpt/img");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->vnode_blobs, rs.vnode_blobs);

  // A SIGKILL mid-write leaves a short file: the framed record is torn and
  // the image must be rejected, not half-restored.
  std::string raw;
  ASSERT_TRUE(env.ReadFile("/ckpt/img", &raw).ok());
  ASSERT_TRUE(env.WriteFile("/ckpt/img", raw.substr(0, raw.size() / 2)).ok());
  auto torn = rhino::ReadCheckpointImage(&env, "/ckpt/img");
  EXPECT_EQ(torn.status().code(), StatusCode::kCorruption);
}

TEST(WireTest, VnodeForKeySpreadsAndIsStable) {
  const uint32_t kVnodes = 16;
  std::vector<int> hits(kVnodes, 0);
  for (uint64_t key = 0; key < 1000; ++key) {
    uint32_t vnode = VnodeForKey(key, kVnodes);
    ASSERT_LT(vnode, kVnodes);
    EXPECT_EQ(vnode, VnodeForKey(key, kVnodes));  // deterministic
    hits[vnode]++;
  }
  for (uint32_t v = 0; v < kVnodes; ++v) {
    EXPECT_GT(hits[v], 0) << "vnode " << v << " never hit";
  }
}

// ---------------------------------------------------- pipelined channel --

PipelinedChannelOptions FastChannelOptions() {
  PipelinedChannelOptions options;
  options.poll_ms = 10;
  options.retry.initial_backoff_us = 1000;
  options.retry.max_backoff_us = 10000;
  options.retry.max_attempts = 4;
  return options;
}

/// Writes a reply envelope frame for `seq`.
void SendReply(Socket* conn, uint64_t seq, const std::string& body) {
  ReplyEnvelope rep;
  rep.seq = seq;
  rep.body = body;
  std::string out;
  rep.EncodeTo(&out);
  EXPECT_TRUE(WriteFrame(*conn, out).ok());
}

/// Reads one request frame; returns seq 0 on any failure.
RequestEnvelope ReadRequest(Socket* conn) {
  std::string frame;
  if (!ReadFrame(*conn, &frame).ok()) return RequestEnvelope{};
  auto req = RequestEnvelope::Decode(frame);
  if (!req.ok()) return RequestEnvelope{};
  return std::move(req).MoveValue();
}

/// Blocks until the connection drops (the channel closed) — keeps a test
/// server from racing the client's last reads.
void HoldOpen(Socket* conn) {
  std::string dummy;
  while (ReadFrame(*conn, &dummy).ok()) {
  }
}

TEST(PipelinedChannelTest, OutOfOrderRepliesMatchByCorrelationId) {
  constexpr int kN = 4;
  auto listen = Socket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok());
  uint16_t port = listen->local_port();
  std::thread server([listener = std::move(listen).MoveValue()]() mutable {
    auto conn = listener.Accept();
    if (!conn.ok()) return;
    std::vector<RequestEnvelope> got;
    for (int i = 0; i < kN; ++i) got.push_back(ReadRequest(&*conn));
    // Replies in REVERSE order: matching must be by correlation id, not
    // arrival order.
    for (int i = kN - 1; i >= 0; --i) {
      SendReply(&*conn, got[i].seq, "echo:" + got[i].body);
    }
    HoldOpen(&*conn);
  });

  PipelinedChannel channel("127.0.0.1", port, FastChannelOptions(), "test");
  std::mutex mu;
  std::condition_variable cv;
  std::map<int, std::string> results;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(channel
                    .Submit(MessageType::kHello, "r" + std::to_string(i),
                            [&, i](Status st, std::string body) {
                              std::lock_guard<std::mutex> lock(mu);
                              results[i] =
                                  st.ok() ? body : "ERR:" + st.ToString();
                              cv.notify_all();
                            })
                    .ok());
  }
  ASSERT_TRUE(channel.Drain().ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] {
      return results.size() == static_cast<size_t>(kN);
    }));
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(results[i], "echo:r" + std::to_string(i)) << "request " << i;
    }
  }
  EXPECT_EQ(channel.inflight(), 0u);
  // The server held all replies until it had read all requests, so the
  // whole window was in flight at once.
  EXPECT_EQ(channel.inflight_high_water(), static_cast<uint32_t>(kN));
  EXPECT_EQ(channel.replayed_total(), 0u);
  channel.Close();
  server.join();
}

TEST(PipelinedChannelTest, FullWindowBlocksSubmitUntilAReplyFrees) {
  auto listen = Socket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok());
  uint16_t port = listen->local_port();
  std::atomic<bool> release{false};
  std::thread server([&release,
                      listener = std::move(listen).MoveValue()]() mutable {
    auto conn = listener.Accept();
    if (!conn.ok()) return;
    RequestEnvelope first = ReadRequest(&*conn);
    RequestEnvelope second = ReadRequest(&*conn);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    SendReply(&*conn, first.seq, "ok");
    SendReply(&*conn, second.seq, "ok");
    RequestEnvelope third = ReadRequest(&*conn);
    SendReply(&*conn, third.seq, "ok");
    HoldOpen(&*conn);
  });

  PipelinedChannelOptions options = FastChannelOptions();
  options.window = 2;
  PipelinedChannel channel("127.0.0.1", port, options, "test");
  std::atomic<int> done{0};
  auto count_ok = [&done](Status st, std::string) {
    if (st.ok()) ++done;
  };
  ASSERT_TRUE(channel.Submit(MessageType::kHello, "a", count_ok).ok());
  ASSERT_TRUE(channel.Submit(MessageType::kHello, "b", count_ok).ok());
  std::atomic<bool> third_submitted{false};
  std::thread submitter([&] {
    EXPECT_TRUE(channel.Submit(MessageType::kHello, "c", count_ok).ok());
    third_submitted.store(true);
  });
  // The window is full: the third submit must be BLOCKED (backpressure),
  // not queued or dropped.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(third_submitted.load());
  EXPECT_EQ(channel.inflight(), 2u);
  release.store(true);
  submitter.join();
  ASSERT_TRUE(channel.Drain().ok());
  // Drain empties the window; the last callback may still be returning.
  for (int spins = 0; done.load() < 3 && spins < 500; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(done.load(), 3);
  EXPECT_EQ(channel.inflight_high_water(), 2u);
  channel.Close();
  server.join();
}

TEST(PipelinedChannelTest, DeadlineExpiresOneRequestWhileWindowKeepsMoving) {
  auto listen = Socket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok());
  uint16_t port = listen->local_port();
  std::thread server([listener = std::move(listen).MoveValue()]() mutable {
    auto conn = listener.Accept();
    if (!conn.ok()) return;
    RequestEnvelope starved = ReadRequest(&*conn);  // never answered in time
    RequestEnvelope served = ReadRequest(&*conn);
    SendReply(&*conn, served.seq, "served");
    RequestEnvelope after = ReadRequest(&*conn);
    SendReply(&*conn, after.seq, "after");
    // A LATE reply to the starved id, long past its deadline: the channel
    // must drop it silently (the callback already fired with TimedOut).
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    SendReply(&*conn, starved.seq, "too-late");
    HoldOpen(&*conn);
  });

  PipelinedChannelOptions options = FastChannelOptions();
  options.deadline_ms = 150;
  options.poll_ms = 20;
  PipelinedChannel channel("127.0.0.1", port, options, "test");
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::string, Status> statuses;
  auto record = [&](const std::string& name) {
    return [&, name](Status st, std::string) {
      std::lock_guard<std::mutex> lock(mu);
      statuses[name] = st;
      cv.notify_all();
    };
  };
  auto wait_for = [&](const std::string& name) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::seconds(5),
                       [&] { return statuses.count(name) > 0; });
  };
  ASSERT_TRUE(
      channel.Submit(MessageType::kHello, "starved", record("starved")).ok());
  ASSERT_TRUE(
      channel.Submit(MessageType::kHello, "served", record("served")).ok());
  ASSERT_TRUE(wait_for("served"));
  // The starved request is still pending; the window keeps moving.
  ASSERT_TRUE(
      channel.Submit(MessageType::kHello, "after", record("after")).ok());
  ASSERT_TRUE(wait_for("after"));
  ASSERT_TRUE(wait_for("starved"));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(statuses["served"].ok());
    EXPECT_TRUE(statuses["after"].ok());
    EXPECT_EQ(statuses["starved"].code(), StatusCode::kTimedOut)
        << statuses["starved"].ToString();
  }
  ASSERT_TRUE(channel.Drain().ok());  // the expired entry left the window
  // Give the late reply time to arrive and be dropped; the channel must
  // stay usable afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ(channel.inflight(), 0u);
  channel.Close();
  server.join();
}

TEST(PipelinedChannelTest, ReconnectReplaysPendingWindowExactlyOnce) {
  auto listen = Socket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok());
  uint16_t port = listen->local_port();
  std::thread server([listener = std::move(listen).MoveValue()]() mutable {
    // First connection: serve one of three requests, then drop carrying
    // two unanswered (a mid-window outage).
    uint64_t pending_a = 0, pending_b = 0;
    {
      auto conn = listener.Accept();
      if (!conn.ok()) return;
      RequestEnvelope r1 = ReadRequest(&*conn);
      RequestEnvelope r2 = ReadRequest(&*conn);
      RequestEnvelope r3 = ReadRequest(&*conn);
      SendReply(&*conn, r1.seq, "echo:" + r1.body);
      pending_a = r2.seq;
      pending_b = r3.seq;
      // conn drops here (destructor closes the socket).
    }
    // Second connection: the channel must replay ONLY the unanswered
    // window, in correlation-id order.
    auto conn = listener.Accept();
    if (!conn.ok()) return;
    RequestEnvelope replay1 = ReadRequest(&*conn);
    RequestEnvelope replay2 = ReadRequest(&*conn);
    EXPECT_EQ(replay1.seq, pending_a);
    EXPECT_EQ(replay2.seq, pending_b);
    SendReply(&*conn, replay1.seq, "echo:" + replay1.body);
    SendReply(&*conn, replay2.seq, "echo:" + replay2.body);
    HoldOpen(&*conn);
  });

  PipelinedChannel channel("127.0.0.1", port, FastChannelOptions(), "test");
  std::mutex mu;
  std::condition_variable cv;
  std::map<int, int> fired;  // exactly-once audit: callback count per req
  std::map<int, std::string> results;
  int total_fired = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(channel
                    .Submit(MessageType::kHello, "r" + std::to_string(i),
                            [&, i](Status st, std::string body) {
                              std::lock_guard<std::mutex> lock(mu);
                              ++fired[i];
                              ++total_fired;
                              results[i] =
                                  st.ok() ? body : "ERR:" + st.ToString();
                              cv.notify_all();
                            })
                    .ok());
  }
  ASSERT_TRUE(channel.Drain().ok());
  {
    // Drain guarantees the window is empty, not that the last callback
    // already returned — wait for the audit itself.
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return total_fired >= 3; }));
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(fired[i], 1) << "request " << i << " callback count";
      EXPECT_EQ(results[i], "echo:r" + std::to_string(i)) << "request " << i;
    }
  }
  EXPECT_EQ(channel.replayed_total(), 2u);
  channel.Close();
  server.join();
}

TEST(LoopbackTransportTest, KillMakesEndpointUnreachable) {
  LoopbackTransport transport;
  transport.Register("nodeA", [](MessageType, std::string_view body) {
    return Result<std::string>(std::string(body));
  });
  std::string reply;
  ASSERT_TRUE(transport.Call("nodeA", MessageType::kStats, "x", &reply).ok());
  EXPECT_EQ(reply, "x");
  transport.Kill("nodeA");
  Status st = transport.Call("nodeA", MessageType::kStats, "x", &reply);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace rhino::net
