#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "lsm/env.h"
#include "lsm/log_format.h"
#include "net/frame.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/replication_runtime.h"

/// \file net_test.cc
/// The networked substrate in isolation: socket error contract, frame
/// robustness (truncated / corrupt / oversized / mid-message disconnect on
/// BOTH sides), RPC request/reply incl. reconnect-after-restart, and wire
/// serialization round trips with prefix-truncation fuzzing.
///
/// Everything binds port 0 (kernel-assigned), so parallel test shards
/// never collide.

namespace rhino::net {
namespace {

/// A listener + one accepted connection, paired with a client socket.
struct SocketPair {
  Socket listener;
  Socket server;  // accepted side
  Socket client;  // connecting side

  static SocketPair Make() {
    SocketPair p;
    auto listen = Socket::Listen("127.0.0.1", 0);
    EXPECT_TRUE(listen.ok()) << listen.status().ToString();
    p.listener = std::move(listen).MoveValue();
    auto client = Socket::Connect("127.0.0.1", p.listener.local_port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    p.client = std::move(client).MoveValue();
    auto server = p.listener.Accept();
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    p.server = std::move(server).MoveValue();
    return p;
  }
};

TEST(SocketTest, PortZeroGetsKernelAssignedPort) {
  auto listen = Socket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok()) << listen.status().ToString();
  EXPECT_NE(listen->local_port(), 0);
}

TEST(SocketTest, ConnectToClosedPortIsError) {
  // Bind a port, close the listener, then connect to the now-dead port.
  uint16_t dead_port;
  {
    auto listen = Socket::Listen("127.0.0.1", 0);
    ASSERT_TRUE(listen.ok());
    dead_port = listen->local_port();
  }
  auto conn = Socket::Connect("127.0.0.1", dead_port);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kIOError);
}

TEST(SocketTest, CleanPeerCloseIsAborted) {
  auto p = SocketPair::Make();
  p.client.Close();
  char buf[1];
  Status st = p.server.ReadExact(buf, 1);
  EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
}

TEST(SocketTest, MidMessageDisconnectIsIOError) {
  auto p = SocketPair::Make();
  ASSERT_TRUE(p.client.WriteAll("abc").ok());
  p.client.Close();
  char buf[8];
  Status st = p.server.ReadExact(buf, 8);  // wants 8, peer sent 3 and died
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
}

TEST(SocketTest, RecvTimeoutIsTimedOut) {
  auto p = SocketPair::Make();
  ASSERT_TRUE(p.server.SetRecvTimeout(50).ok());
  char buf[1];
  Status st = p.server.ReadExact(buf, 1);
  EXPECT_EQ(st.code(), StatusCode::kTimedOut) << st.ToString();
}

TEST(ParseEndpointTest, RoundTripAndErrors) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseEndpoint("127.0.0.1:8080", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_EQ(FormatEndpoint(host, port), "127.0.0.1:8080");
  EXPECT_FALSE(ParseEndpoint("no-port", &host, &port).ok());
  EXPECT_FALSE(ParseEndpoint("h:99999", &host, &port).ok());
  EXPECT_FALSE(ParseEndpoint("h:abc", &host, &port).ok());
}

// ------------------------------------------------------------- framing --

TEST(FrameTest, RoundTrip) {
  auto p = SocketPair::Make();
  std::string payload(100000, 'x');
  payload += "tail";
  ASSERT_TRUE(WriteFrame(p.client, payload).ok());
  std::string got;
  ASSERT_TRUE(ReadFrame(p.server, &got).ok());
  EXPECT_EQ(got, payload);
}

TEST(FrameTest, TruncatedPayloadIsIOError) {
  auto p = SocketPair::Make();
  // Header promises 100 bytes; only 10 arrive before the peer dies.
  std::string framed;
  lsm::AppendLogRecord(&framed, std::string(100, 'x'));
  ASSERT_TRUE(p.client.WriteAll(framed.substr(0, 8 + 10)).ok());
  p.client.Close();
  std::string got;
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
}

TEST(FrameTest, TruncatedHeaderIsIOError) {
  auto p = SocketPair::Make();
  ASSERT_TRUE(p.client.WriteAll("abc").ok());  // 3 of 8 header bytes
  p.client.Close();
  std::string got;
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
}

TEST(FrameTest, CleanCloseBetweenFramesIsAborted) {
  auto p = SocketPair::Make();
  ASSERT_TRUE(WriteFrame(p.client, "one").ok());
  p.client.Close();
  std::string got;
  ASSERT_TRUE(ReadFrame(p.server, &got).ok());
  EXPECT_EQ(got, "one");
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
}

TEST(FrameTest, CorruptChecksumIsCorruption) {
  auto p = SocketPair::Make();
  std::string framed;
  lsm::AppendLogRecord(&framed, "payload");
  framed[0] ^= 0x5a;  // flip checksum bits
  ASSERT_TRUE(p.client.WriteAll(framed).ok());
  std::string got;
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST(FrameTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  auto p = SocketPair::Make();
  // A garbage header claiming ~4 GiB. ReadFrame must fail on the length
  // check alone — it never waits for (or allocates) the claimed bytes.
  char header[8];
  uint32_t crc = 0xdeadbeef, len = 0xfffffff0;
  std::memcpy(header, &crc, 4);
  std::memcpy(header + 4, &len, 4);
  ASSERT_TRUE(p.client.WriteAll(std::string_view(header, 8)).ok());
  std::string got;
  Status st = ReadFrame(p.server, &got);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();

  // Same with a caller-tightened limit: 1 byte over is rejected.
  ASSERT_TRUE(WriteFrame(p.client, std::string(65, 'x')).ok());
  st = ReadFrame(p.server, &got, /*max_frame_bytes=*/64);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

// ------------------------------------------------------------------ rpc --

RpcClientOptions FastRetryOptions() {
  RpcClientOptions options;
  options.retry.initial_backoff_us = 1000;  // 1ms: keep tests snappy
  options.retry.max_backoff_us = 10000;
  options.retry.max_attempts = 4;
  return options;
}

TEST(RpcTest, EchoAndApplicationError) {
  RpcServer server([](MessageType type, std::string_view body) -> Result<std::string> {
    if (type == MessageType::kStats) {
      return Status::FailedPrecondition("stats refused");
    }
    return std::string(body);
  });
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  RpcClient client("127.0.0.1", server.port(), FastRetryOptions(), "test");
  std::string reply;
  ASSERT_TRUE(client.Call(MessageType::kHello, "ping", &reply).ok());
  EXPECT_EQ(reply, "ping");
  // Application errors are not transport errors: no retry, code preserved.
  Status st = client.Call(MessageType::kStats, "", &reply);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(st.message(), "stats refused");
}

TEST(RpcTest, ServerSurvivesGarbageBytes) {
  std::atomic<int> served{0};
  RpcServer server([&](MessageType, std::string_view body) -> Result<std::string> {
    ++served;
    return std::string(body);
  });
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  {  // Raw garbage that is not even a frame header.
    auto conn = Socket::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->WriteAll("total garbage, not a frame").ok());
    conn->Close();
  }
  {  // A valid frame whose payload is not a request envelope.
    auto conn = Socket::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(*conn, "\xff").ok());
    // The server answers on seq 0 with an error (or closes); either way it
    // must not crash or hang.
    conn->SetRecvTimeout(2000);
    std::string got;
    (void)ReadFrame(*conn, &got);
  }
  {  // A frame with an oversized length prefix.
    auto conn = Socket::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    char header[8];
    uint32_t crc = 1, len = 0xffffff00;
    std::memcpy(header, &crc, 4);
    std::memcpy(header + 4, &len, 4);
    ASSERT_TRUE(conn->WriteAll(std::string_view(header, 8)).ok());
    conn->Close();
  }

  // After all that abuse, a well-formed client still gets service.
  RpcClient client("127.0.0.1", server.port(), FastRetryOptions(), "test");
  std::string reply;
  ASSERT_TRUE(client.Call(MessageType::kHello, "still alive", &reply).ok());
  EXPECT_EQ(reply, "still alive");
  EXPECT_GE(served.load(), 1);
}

TEST(RpcTest, ClientSurvivesGarbageReply) {
  // A hand-rolled "server" that answers every frame with a corrupt one.
  auto listen = Socket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok());
  ASSERT_TRUE(listen->SetRecvTimeout(500).ok());  // bounded accept waits
  uint16_t port = listen->local_port();
  std::thread server([listener = std::move(listen).MoveValue()]() mutable {
    for (int i = 0; i < 8; ++i) {  // serve a few connections, then quit
      auto conn = listener.Accept();
      if (!conn.ok()) return;
      conn->SetRecvTimeout(2000);
      std::string frame;
      if (!ReadFrame(*conn, &frame).ok()) continue;
      std::string garbage;
      lsm::AppendLogRecord(&garbage, "\x01\x02not an envelope");
      (void)conn->WriteAll(garbage);
    }
  });
  RpcClientOptions options = FastRetryOptions();
  options.retry.max_attempts = 2;
  RpcClient client("127.0.0.1", port, options, "test");
  std::string reply;
  Status st = client.Call(MessageType::kHello, "hi", &reply);
  EXPECT_FALSE(st.ok());  // corrupt reply is an error, never a hang/crash
  server.join();
}

TEST(RpcTest, ClientReconnectsAfterServerRestart) {
  auto handler = [](MessageType, std::string_view body) -> Result<std::string> {
    return std::string(body);
  };
  auto server = std::make_unique<RpcServer>(handler);
  ASSERT_TRUE(server->Start("127.0.0.1", 0).ok());
  uint16_t port = server->port();

  RpcClient client("127.0.0.1", port, FastRetryOptions(), "test");
  std::string reply;
  ASSERT_TRUE(client.Call(MessageType::kHello, "before", &reply).ok());

  // Restart the server on the same port (SO_REUSEADDR): the client's
  // cached connection is now stale, so the next call must transparently
  // reconnect via its whole-call retry.
  server->Stop();
  server = std::make_unique<RpcServer>(handler);
  ASSERT_TRUE(server->Start("127.0.0.1", port).ok());
  ASSERT_TRUE(client.Call(MessageType::kHello, "after", &reply).ok());
  EXPECT_EQ(reply, "after");
}

TEST(RpcTest, DeadEndpointFailsFastWithExhaustedRetries) {
  uint16_t dead_port;
  {
    auto listen = Socket::Listen("127.0.0.1", 0);
    ASSERT_TRUE(listen.ok());
    dead_port = listen->local_port();
  }
  RpcClient client("127.0.0.1", dead_port, FastRetryOptions(), "test");
  Status st = client.Call(MessageType::kStats, "", nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("gave up after"), std::string::npos)
      << st.ToString();
}

// ------------------------------------------------------- wire round trips --

dataflow::Batch MakeBatch() {
  dataflow::Batch batch;
  batch.create_time = 123456;
  batch.source_id = 3;
  batch.source_offset = 42;
  for (uint64_t k = 0; k < 5; ++k) {
    dataflow::Record rec;
    rec.key = k * 1000 + 7;
    rec.event_time = 1000 + static_cast<SimTime>(k);
    rec.size = 32;
    rec.payload = "payload-" + std::to_string(k);
    batch.records.push_back(rec);
    batch.count += 1;
    batch.bytes += rec.size;
  }
  return batch;
}

dataflow::ControlEvent MakeHandoverMarker() {
  auto spec = std::make_shared<dataflow::HandoverSpec>();
  spec->id = 9;
  spec->operator_name = "counter";
  spec->origin_failed = true;
  spec->moves.push_back(dataflow::HandoverMove{0, 2, {1, 3, 5}});
  spec->moves.push_back(dataflow::HandoverMove{1, 2, {7}});
  dataflow::ControlEvent ev;
  ev.type = dataflow::ControlEvent::Type::kHandoverMarker;
  ev.id = 9;
  ev.handover = spec;
  return ev;
}

/// Every strict prefix of a valid encoding must decode to an error (or,
/// for a handful of self-delimiting prefixes, a success) — never crash,
/// never read out of bounds. ASan turns any violation into a test failure.
template <typename DecodeFn>
void FuzzPrefixes(const std::string& encoded, DecodeFn decode) {
  for (size_t len = 0; len < encoded.size(); ++len) {
    (void)decode(std::string_view(encoded).substr(0, len));
  }
}

TEST(WireTest, BatchRoundTripAndTruncationFuzz) {
  dataflow::Batch batch = MakeBatch();
  std::string encoded;
  EncodeBatch(batch, &encoded);
  auto decoded = DecodeBatch(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->create_time, batch.create_time);
  EXPECT_EQ(decoded->source_id, batch.source_id);
  EXPECT_EQ(decoded->source_offset, batch.source_offset);
  ASSERT_EQ(decoded->records.size(), batch.records.size());
  for (size_t i = 0; i < batch.records.size(); ++i) {
    EXPECT_EQ(decoded->records[i].key, batch.records[i].key);
    EXPECT_EQ(decoded->records[i].payload, batch.records[i].payload);
  }
  FuzzPrefixes(encoded, DecodeBatch);
  // Trailing garbage is Corruption, not silent acceptance.
  EXPECT_EQ(DecodeBatch(encoded + "x").status().code(),
            StatusCode::kCorruption);
}

TEST(WireTest, ControlEventRoundTripAndTruncationFuzz) {
  dataflow::ControlEvent ev = MakeHandoverMarker();
  std::string encoded;
  EncodeControlEvent(ev, &encoded);
  auto decoded = DecodeControlEvent(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, ev.type);
  EXPECT_EQ(decoded->id, ev.id);
  ASSERT_NE(decoded->handover, nullptr);
  EXPECT_EQ(decoded->handover->operator_name, "counter");
  EXPECT_TRUE(decoded->handover->origin_failed);
  ASSERT_EQ(decoded->handover->moves.size(), 2u);
  EXPECT_EQ(decoded->handover->moves[0].vnodes,
            (std::vector<uint32_t>{1, 3, 5}));
  FuzzPrefixes(encoded, DecodeControlEvent);

  // A plain barrier has no spec attached.
  dataflow::ControlEvent barrier;
  barrier.id = 4;
  encoded.clear();
  EncodeControlEvent(barrier, &encoded);
  auto barrier2 = DecodeControlEvent(encoded);
  ASSERT_TRUE(barrier2.ok());
  EXPECT_EQ(barrier2->handover, nullptr);
  EXPECT_EQ(barrier2->id, 4u);
}

TEST(WireTest, EnvelopesRoundTripAndRejectJunk) {
  RequestEnvelope req;
  req.type = MessageType::kProcessBatch;
  req.seq = 77;
  req.body = "body-bytes";
  std::string encoded;
  req.EncodeTo(&encoded);
  auto decoded = RequestEnvelope::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MessageType::kProcessBatch);
  EXPECT_EQ(decoded->seq, 77u);
  EXPECT_EQ(decoded->body, "body-bytes");
  EXPECT_FALSE(RequestEnvelope::Decode("\xff junk").ok());

  ReplyEnvelope rep;
  rep.seq = 77;
  rep.code = StatusCode::kNotFound;
  rep.message = "nope";
  rep.body = "partial";
  encoded.clear();
  rep.EncodeTo(&encoded);
  auto decoded2 = ReplyEnvelope::Decode(encoded);
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2->ToStatus().code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded2->body, "partial");
  FuzzPrefixes(encoded, ReplyEnvelope::Decode);
}

TEST(WireTest, RequestBodiesRoundTripAndFuzz) {
  {
    HelloRequest msg;
    msg.node_id = 2;
    msg.successor = "127.0.0.1:9999";
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = HelloRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->successor, msg.successor);
    FuzzPrefixes(encoded, HelloRequest::Decode);
  }
  {
    AddOperatorRequest msg;
    msg.name = "counter";
    msg.num_vnodes = 16;
    msg.owned_vnodes = {0, 3, 6, 9};
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = AddOperatorRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->owned_vnodes, msg.owned_vnodes);
    FuzzPrefixes(encoded, AddOperatorRequest::Decode);
  }
  {
    ProcessBatchRequest msg;
    msg.op = "counter";
    msg.batch = MakeBatch();
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = ProcessBatchRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->batch.records.size(), msg.batch.records.size());
    FuzzPrefixes(encoded, ProcessBatchRequest::Decode);
  }
  {
    HandoverStateRequest msg;
    msg.control = MakeHandoverMarker();
    msg.move_index = 1;
    msg.replica = "replica-bytes";
    msg.durable = 1;
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = HandoverStateRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->move_index, 1u);
    EXPECT_EQ(decoded->replica, "replica-bytes");
    EXPECT_EQ(decoded->durable, 1);
    FuzzPrefixes(encoded, HandoverStateRequest::Decode);
  }
  {
    ReplicaFetchRequest msg;
    msg.origin_node = 3;
    msg.op = "counter";
    msg.vnodes = {1, 2};
    std::string encoded;
    msg.EncodeTo(&encoded);
    auto decoded = ReplicaFetchRequest::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->vnodes, msg.vnodes);
    FuzzPrefixes(encoded, ReplicaFetchRequest::Decode);
  }
}

TEST(WireTest, ReplicaStateRoundTripAndTruncationFuzz) {
  rhino::ReplicaState rs;
  rs.latest_checkpoint_id = 12;
  rs.latest_descriptor.checkpoint_id = 12;
  rs.latest_descriptor.operator_name = "counter";
  rs.latest_descriptor.instance_id = 1;
  rs.latest_descriptor.files = {{"000001.sst", 4096}, {"000002.sst", 512}};
  rs.latest_descriptor.delta_files = {{"000002.sst", 512}};
  rs.latest_descriptor.vnode_bytes = {{0, 128}, {5, 64}};
  rs.latest_descriptor.source_offsets = {{0, 10}, {1, 4}};
  rs.latest_descriptor.vnode_watermarks = {{0, {{0, 10}, {1, 4}}},
                                           {5, {{0, 9}}}};
  rs.vnode_blobs = {{0, "blob-zero"}, {5, std::string(1000, 'z')}};

  std::string encoded;
  rhino::EncodeReplicaState(rs, &encoded);
  auto decoded = rhino::DecodeReplicaState(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->latest_checkpoint_id, 12u);
  EXPECT_EQ(decoded->latest_descriptor.files, rs.latest_descriptor.files);
  EXPECT_EQ(decoded->latest_descriptor.vnode_watermarks,
            rs.latest_descriptor.vnode_watermarks);
  EXPECT_EQ(decoded->vnode_blobs, rs.vnode_blobs);
  FuzzPrefixes(encoded, rhino::DecodeReplicaState);
  EXPECT_EQ(rhino::DecodeReplicaState(encoded + "x").status().code(),
            StatusCode::kCorruption);
}

TEST(WireTest, TornCheckpointImageIsCorruption) {
  lsm::MemEnv env;
  rhino::ReplicaState rs;
  rs.latest_checkpoint_id = 3;
  rs.latest_descriptor.operator_name = "counter";
  rs.vnode_blobs = {{1, "some-state"}};
  ASSERT_TRUE(rhino::WriteCheckpointImage(&env, "/ckpt/img", rs).ok());
  auto loaded = rhino::ReadCheckpointImage(&env, "/ckpt/img");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->vnode_blobs, rs.vnode_blobs);

  // A SIGKILL mid-write leaves a short file: the framed record is torn and
  // the image must be rejected, not half-restored.
  std::string raw;
  ASSERT_TRUE(env.ReadFile("/ckpt/img", &raw).ok());
  ASSERT_TRUE(env.WriteFile("/ckpt/img", raw.substr(0, raw.size() / 2)).ok());
  auto torn = rhino::ReadCheckpointImage(&env, "/ckpt/img");
  EXPECT_EQ(torn.status().code(), StatusCode::kCorruption);
}

TEST(WireTest, VnodeForKeySpreadsAndIsStable) {
  const uint32_t kVnodes = 16;
  std::vector<int> hits(kVnodes, 0);
  for (uint64_t key = 0; key < 1000; ++key) {
    uint32_t vnode = VnodeForKey(key, kVnodes);
    ASSERT_LT(vnode, kVnodes);
    EXPECT_EQ(vnode, VnodeForKey(key, kVnodes));  // deterministic
    hits[vnode]++;
  }
  for (uint32_t v = 0; v < kVnodes; ++v) {
    EXPECT_GT(hits[v], 0) << "vnode " << v << " never hit";
  }
}

TEST(LoopbackTransportTest, KillMakesEndpointUnreachable) {
  LoopbackTransport transport;
  transport.Register("nodeA", [](MessageType, std::string_view body) {
    return Result<std::string>(std::string(body));
  });
  std::string reply;
  ASSERT_TRUE(transport.Call("nodeA", MessageType::kStats, "x", &reply).ok());
  EXPECT_EQ(reply, "x");
  transport.Kill("nodeA");
  Status st = transport.Call("nodeA", MessageType::kStats, "x", &reply);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace rhino::net
