#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/source.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/sim_executor.h"
#include "state/lsm_state_backend.h"

namespace rhino::rhino {
namespace {

using dataflow::Batch;
using dataflow::Engine;
using dataflow::EngineOptions;
using dataflow::ExecutionGraph;
using dataflow::HandoverMove;
using dataflow::ProcessingProfile;
using dataflow::QueryDef;
using dataflow::Record;

// ---------------------------------------------------- ReplicationManager --

TEST(ReplicationManagerTest, GroupsExcludeHomeAndHaveSizeR) {
  ReplicationManager rm({0, 1, 2, 3}, /*r=*/2);
  rm.BuildGroups({{"join", 0, 0, 100},
                  {"join", 1, 1, 100},
                  {"join", 2, 2, 100},
                  {"join", 3, 3, 100}});
  for (uint32_t i = 0; i < 4; ++i) {
    const auto& group = rm.Group("join", i);
    ASSERT_EQ(group.size(), 2u);
    std::set<int> distinct(group.begin(), group.end());
    EXPECT_EQ(distinct.size(), 2u);
    EXPECT_FALSE(distinct.count(static_cast<int>(i)))
        << "secondary copies must live off the home worker";
  }
}

TEST(ReplicationManagerTest, BinPackingBalancesLoad) {
  ReplicationManager rm({0, 1, 2, 3, 4, 5, 6, 7}, 1);
  std::vector<InstanceInfo> instances;
  for (uint32_t i = 0; i < 64; ++i) {
    instances.push_back({"join", i, static_cast<int>(i % 8), 1000});
  }
  rm.BuildGroups(instances);
  uint64_t min_load = ~0ull, max_load = 0;
  for (int w = 0; w < 8; ++w) {
    min_load = std::min(min_load, rm.WorkerLoad(w));
    max_load = std::max(max_load, rm.WorkerLoad(w));
  }
  EXPECT_EQ(min_load, max_load) << "equal weights must pack evenly";
  EXPECT_EQ(max_load, 8 * 1000u);
}

TEST(ReplicationManagerTest, SkewedWeightsStayBalanced) {
  ReplicationManager rm({0, 1, 2, 3}, 1);
  std::vector<InstanceInfo> instances;
  for (uint32_t i = 0; i < 16; ++i) {
    instances.push_back({"op", i, static_cast<int>(i % 4),
                         (i % 4 == 0) ? 8000ull : 1000ull});
  }
  rm.BuildGroups(instances);
  uint64_t total = 0, max_load = 0;
  for (int w = 0; w < 4; ++w) {
    total += rm.WorkerLoad(w);
    max_load = std::max(max_load, rm.WorkerLoad(w));
  }
  EXPECT_LT(max_load, total / 4 * 2) << "no worker hoards the heavy copies";
}

TEST(ReplicationManagerTest, FailureRepairReplacesWorker) {
  ReplicationManager rm({0, 1, 2, 3}, 1);
  rm.BuildGroups({{"op", 0, 0, 100}, {"op", 1, 1, 100}});
  int replica_of_0 = rm.Group("op", 0)[0];
  auto repairs = rm.HandleWorkerFailure(replica_of_0);
  const auto& group = rm.Group("op", 0);
  ASSERT_EQ(group.size(), 1u);
  EXPECT_NE(group[0], replica_of_0);
  EXPECT_NE(group[0], 0) << "replacement must still avoid the home worker";
  // The repair names the substitute so the runtime can catch it up.
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_EQ(repairs[0].op_name, "op");
  EXPECT_EQ(repairs[0].subtask, 0u);
  EXPECT_EQ(repairs[0].substitute, group[0]);
}

TEST(ReplicationManagerTest, CascadingFailuresDegradeGracefully) {
  // 3 workers, r=2: after one failure no eligible substitute remains for
  // home 0 (the survivors are the home and the remaining member), so the
  // group shrinks instead of the process aborting.
  ReplicationManager rm({0, 1, 2}, 2);
  rm.BuildGroups({{"op", 0, 0, 100}});
  ASSERT_EQ(rm.Group("op", 0).size(), 2u);
  auto repairs = rm.HandleWorkerFailure(2);
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_EQ(repairs[0].substitute, -1) << "no substitute exists";
  EXPECT_EQ(rm.Group("op", 0).size(), 1u);
  ASSERT_EQ(rm.degraded_groups().size(), 1u);
  EXPECT_EQ(rm.degraded_groups()[0], "op#0");

  // Rebuilding with the shrunken worker set also degrades without dying.
  rm.BuildGroups({{"op", 0, 0, 100}});
  EXPECT_EQ(rm.Group("op", 0).size(), 1u);
  EXPECT_EQ(rm.degraded_groups().size(), 1u);
}

// ---------------------------------------------------- ReplicationRuntime --

class ReplicationRuntimeTest : public ::testing::Test {
 protected:
  ReplicationRuntimeTest() : cluster_(&sim_, 4, Spec()), rm_({0, 1, 2, 3}, 2) {
    rm_.BuildGroups({{"op", 0, 0, 100}});
  }
  static sim::NodeSpec Spec() {
    sim::NodeSpec spec;
    spec.net_bytes_per_sec = 1e9;
    spec.disk_write_bytes_per_sec = 1e9;
    spec.net_latency = 0;
    return spec;
  }
  state::CheckpointDescriptor Desc(uint64_t id, uint64_t delta) {
    state::CheckpointDescriptor desc;
    desc.checkpoint_id = id;
    desc.operator_name = "op";
    desc.instance_id = 0;
    desc.files = {{"base", 0}, {"delta-" + std::to_string(id), delta}};
    desc.delta_files = {{"delta-" + std::to_string(id), delta}};
    return desc;
  }
  runtime::SimExecutor sim_;
  sim::Cluster cluster_;
  ReplicationManager rm_;
};

TEST_F(ReplicationRuntimeTest, ChainDeliversToAllReplicas) {
  ReplicationRuntime runtime(&cluster_, &rm_);
  bool done = false;
  runtime.ReplicateCheckpoint("op", 0, 0, Desc(1, 64 * kMiB),
                              {{0, "blob0"}, {1, "blob1"}},
                              [&](Status st) {
                                EXPECT_TRUE(st.ok());
                                done = true;
                              });
  sim_.Run();
  EXPECT_TRUE(done);
  for (int node : rm_.Group("op", 0)) {
    const ReplicaState* rep = runtime.ReplicaOn("op", 0, node);
    ASSERT_NE(rep, nullptr) << "node " << node;
    EXPECT_EQ(rep->latest_checkpoint_id, 1u);
    EXPECT_EQ(rep->vnode_blobs.at(0), "blob0");
  }
  EXPECT_EQ(runtime.ReplicaOn("op", 0, 0), nullptr) << "home holds primary";
  // Two hops of 64 MiB each.
  EXPECT_EQ(runtime.bytes_replicated(), 2 * 64 * kMiB);
}

TEST_F(ReplicationRuntimeTest, PipeliningBeatsStoreAndForward) {
  ReplicationRuntime runtime(&cluster_, &rm_);
  SimTime completed = 0;
  runtime.ReplicateCheckpoint("op", 0, 0, Desc(1, 256 * kMiB), {},
                              [&](Status) { completed = sim_.Now(); });
  sim_.Run();
  // Store-and-forward over 2 hops would take >= 2 * bytes/bw (plus the
  // disk writes). Chain replication pipelines chunks, so the total is
  // close to one transfer time plus a small pipeline ramp.
  double one_hop_secs = 256.0 * kMiB / 1e9;
  EXPECT_LT(ToSeconds(completed), 1.6 * one_hop_secs);
  EXPECT_GT(ToSeconds(completed), one_hop_secs);
}

TEST_F(ReplicationRuntimeTest, CreditWindowBoundsInFlightChunks) {
  ReplicationOptions options;
  options.credit_window = 2;
  ReplicationRuntime runtime(&cluster_, &rm_, options);
  runtime.ReplicateCheckpoint("op", 0, 0, Desc(1, 128 * kMiB), {},
                              [](Status) {});
  sim_.Run();
  EXPECT_LE(runtime.max_in_flight_chunks(), 2);
}

TEST_F(ReplicationRuntimeTest, EmptyDeltaCompletesWithoutTransfer) {
  ReplicationRuntime runtime(&cluster_, &rm_);
  bool done = false;
  auto desc = Desc(2, 0);
  desc.delta_files.clear();
  runtime.ReplicateCheckpoint("op", 0, 0, desc, {}, [&](Status st) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(runtime.bytes_replicated(), 0u);
  ASSERT_NE(runtime.ReplicaOn("op", 0, rm_.Group("op", 0)[0]), nullptr);
}

TEST_F(ReplicationRuntimeTest, ChainMemberCrashAbortsWithError) {
  ReplicationRuntime runtime(&cluster_, &rm_);
  // Kill the mid-chain member three chunks into the transfer: the done
  // callback must fire with an error instead of the chain hanging.
  int victim = rm_.Group("op", 0)[0];
  uint64_t chunks_seen = 0;
  runtime.SetFaultProbe([&](const std::string& event) {
    if (event == "replication_chunk" && ++chunks_seen == 3) {
      sim_.Schedule(0, [&, victim] { cluster_.FailNode(victim); });
    }
  });
  bool done = false;
  Status status;
  runtime.ReplicateCheckpoint("op", 0, 0, Desc(1, 64 * kMiB), {{0, "blob"}},
                              [&](Status st) {
                                done = true;
                                status = st;
                              });
  sim_.Run();
  ASSERT_TRUE(done) << "chain transfer hung on the dead member";
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(runtime.transfers_aborted(), 1u);
  // The catalog never advertises the dead node.
  EXPECT_EQ(runtime.ReplicaOn("op", 0, victim), nullptr);
}

TEST_F(ReplicationRuntimeTest, PurgeNodeDropsCatalogEntries) {
  ReplicationRuntime runtime(&cluster_, &rm_);
  runtime.SeedReplica("op", 0, Desc(5, 1 * kGiB), {{3, "blob"}});
  int member = rm_.Group("op", 0)[0];
  ASSERT_NE(runtime.ReplicaOn("op", 0, member), nullptr);
  runtime.PurgeNode(member);
  // The node is still alive — the nullptr proves the entry itself is gone.
  ASSERT_TRUE(cluster_.node(member).alive());
  EXPECT_EQ(runtime.ReplicaOn("op", 0, member), nullptr);
}

TEST_F(ReplicationRuntimeTest, SeedReplicaRegistersWithoutIo) {
  ReplicationRuntime runtime(&cluster_, &rm_);
  runtime.SeedReplica("op", 0, Desc(5, 1 * kGiB), {{3, "blob"}});
  EXPECT_EQ(sim_.PendingEvents(), 0u);
  const ReplicaState* rep = runtime.ReplicaOn("op", 0, rm_.Group("op", 0)[0]);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->latest_checkpoint_id, 5u);
}

// ----------------------------------------------------- end-to-end Rhino --

/// Full stack: engine + RM + replication runtime + HM + Rhino storage over
/// a 5-node cluster (node 0 = broker, 1-4 = workers).
class RhinoEndToEndTest : public ::testing::Test {
 protected:
  static constexpr int kPartitions = 2;

  RhinoEndToEndTest()
      : cluster_(&sim_, 5),
        broker_({0}),
        engine_(&sim_, &cluster_, &broker_, SmallEngineOptions()),
        rm_({1, 2, 3, 4}, 1),
        runtime_(&cluster_, &rm_),
        storage_(&cluster_, &runtime_),
        hm_(&engine_, &rm_, &runtime_) {
    broker_.CreateTopic("events", kPartitions);
    engine_.SetCheckpointStorage(&storage_);
  }

  static EngineOptions SmallEngineOptions() {
    EngineOptions opts;
    opts.num_key_groups = 64;
    opts.vnodes_per_instance = 2;
    return opts;
  }

  void BuildCounterQuery(int parallelism = 4) {
    QueryDef def;
    def.AddSource("src", "events", kPartitions)
        .AddStateful("counter", parallelism, {"src"},
                     [this](Engine* engine, int subtask, int node) {
                       auto backend = state::LsmStateBackend::Open(
                           &env_, "/state/c" + std::to_string(subtask),
                           "counter", static_cast<uint32_t>(subtask));
                       RHINO_CHECK(backend.ok());
                       return std::make_unique<dataflow::KeyedCounterOperator>(
                           engine, "counter", subtask, node,
                           ProcessingProfile(), std::move(backend).MoveValue());
                     })
        .AddSink("sink", 1, {"counter"});
    graph_ = ExecutionGraph::Build(&engine_, def, {1, 2, 3, 4});
    graph_->sinks("sink")[0]->SetCollector([this](const Record& r) {
      uint64_t c = std::stoull(r.payload);
      if (c > counts_[r.key]) counts_[r.key] = c;
    });

    std::vector<InstanceInfo> infos;
    for (auto* inst : graph_->stateful("counter")) {
      infos.push_back({"counter", static_cast<uint32_t>(inst->subtask()),
                       inst->node_id(), 1});
    }
    rm_.BuildGroups(infos);
    graph_->StartSources();
  }

  void ProduceWave(uint64_t keys) {
    for (uint64_t key = 0; key < keys; ++key) {
      Batch batch;
      batch.create_time = sim_.Now();
      batch.count = 1;
      batch.bytes = 8;
      batch.records.push_back(Record{key, sim_.Now(), 8, "x"});
      broker_.topic("events")
          .partition(static_cast<int>(key) % kPartitions)
          .Append(std::move(batch));
    }
  }

  runtime::SimExecutor sim_;
  sim::Cluster cluster_;
  broker::Broker broker_;
  lsm::MemEnv env_;
  Engine engine_;
  ReplicationManager rm_;
  ReplicationRuntime runtime_;
  RhinoCheckpointStorage storage_;
  HandoverManager hm_;
  std::unique_ptr<ExecutionGraph> graph_;
  std::map<uint64_t, uint64_t> counts_;
};

TEST_F(RhinoEndToEndTest, CheckpointReplicatesToReplicaGroups) {
  BuildCounterQuery();
  ProduceWave(40);
  sim_.Run();
  engine_.TriggerCheckpoint();
  sim_.Run();

  ASSERT_NE(engine_.LastCompletedCheckpoint(), nullptr);
  EXPECT_EQ(runtime_.checkpoints_replicated(), 4u) << "one per instance";
  for (auto* inst : graph_->stateful("counter")) {
    auto subtask = static_cast<uint32_t>(inst->subtask());
    for (int node : rm_.Group("counter", subtask)) {
      const ReplicaState* rep = runtime_.ReplicaOn("counter", subtask, node);
      ASSERT_NE(rep, nullptr);
      EXPECT_EQ(rep->latest_checkpoint_id,
                engine_.LastCompletedCheckpoint()->id);
      EXPECT_FALSE(rep->vnode_blobs.empty());
    }
  }
}

TEST_F(RhinoEndToEndTest, LoadBalanceMovesHalfTheVnodes) {
  BuildCounterQuery();
  ProduceWave(40);
  sim_.Run();
  engine_.TriggerCheckpoint();
  sim_.Run();

  size_t before = graph_->stateful("counter")[0]->owned_vnodes().size();
  uint64_t id = hm_.TriggerLoadBalance("counter", 0, 1, 0.5);
  sim_.Run();

  ASSERT_FALSE(engine_.handovers().empty());
  EXPECT_TRUE(engine_.handovers().back().completed);
  EXPECT_EQ(graph_->stateful("counter")[0]->owned_vnodes().size(), before / 2);
  const HandoverStats* stats = hm_.StatsFor(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->local_fetch)
      << "the target worker is in the replica group; only the tail moves";
}

TEST_F(RhinoEndToEndTest, LoadBalancePreservesCounts) {
  BuildCounterQuery();
  ProduceWave(30);
  sim_.RunUntil(sim_.Now() + 2 * kSecond);
  engine_.TriggerCheckpoint();
  sim_.RunUntil(sim_.Now() + 2 * kSecond);
  hm_.TriggerLoadBalance("counter", 0, 1, 1.0);  // move everything
  ProduceWave(30);
  sim_.Run();

  for (uint64_t key = 0; key < 30; ++key) {
    EXPECT_EQ(counts_[key], 2u) << "key " << key;
  }
}

TEST_F(RhinoEndToEndTest, FailureRecoveryIsExactlyOnce) {
  BuildCounterQuery();
  ProduceWave(30);
  sim_.RunUntil(sim_.Now() + 2 * kSecond);
  engine_.TriggerCheckpoint();
  sim_.RunUntil(sim_.Now() + 2 * kSecond);
  ASSERT_NE(engine_.LastCompletedCheckpoint(), nullptr);

  // Records after the checkpoint are the interesting case: they are lost
  // with the failed instance and must be replayed from the broker.
  ProduceWave(30);
  sim_.RunUntil(sim_.Now() + 2 * kSecond);

  engine_.FailNode(1);
  auto handovers = hm_.RecoverFailedNode(1);
  ASSERT_FALSE(handovers.empty());
  sim_.RunUntil(sim_.Now() + 5 * kSecond);

  ProduceWave(30);
  sim_.Run();

  for (const auto& record : engine_.handovers()) {
    EXPECT_TRUE(record.completed);
  }
  // Every key was produced three times; no count may be lost or doubled.
  for (uint64_t key = 0; key < 30; ++key) {
    EXPECT_EQ(counts_[key], 3u) << "key " << key;
  }
  // The failed instance's vnodes found a new owner.
  EXPECT_TRUE(graph_->stateful("counter")[0]->halted());
  for (uint32_t v = 0;
       v < engine_.routing("counter")->map().num_vnodes(); ++v) {
    EXPECT_NE(engine_.routing("counter")->InstanceForVnode(v), 0u);
  }
}

TEST_F(RhinoEndToEndTest, TargetCrashMidHandoverDoesNotWedge) {
  BuildCounterQuery();
  ProduceWave(30);
  sim_.RunUntil(sim_.Now() + 2 * kSecond);
  engine_.TriggerCheckpoint();
  sim_.RunUntil(sim_.Now() + 2 * kSecond);

  // Move everything from instance 0 to instance 1, then kill the target's
  // node while the transfer is in flight.
  int victim = graph_->stateful("counter")[1]->node_id();
  hm_.TriggerLoadBalance("counter", 0, 1, 1.0);
  sim_.Schedule(5 * kMillisecond, [&] {
    engine_.FailNode(victim);
    sim_.Schedule(200 * kMillisecond, [&, victim] {
      hm_.RecoverFailedNode(victim);
    });
  });
  sim_.RunUntil(sim_.Now() + 10 * kSecond);
  ProduceWave(30);
  sim_.Run();

  for (const auto& record : engine_.handovers()) {
    EXPECT_TRUE(record.completed) << "handover " << record.spec->id;
  }
  for (uint64_t key = 0; key < 30; ++key) {
    EXPECT_EQ(counts_[key], 2u) << "key " << key;
  }
  // No vnode may end up owned by the dead instance.
  for (uint32_t v = 0; v < engine_.routing("counter")->map().num_vnodes();
       ++v) {
    uint32_t inst = engine_.routing("counter")->InstanceForVnode(v);
    EXPECT_FALSE(graph_->stateful("counter")[inst]->halted()) << "vnode " << v;
  }
}

TEST_F(RhinoEndToEndTest, RecoveryStatsShowLocalFetch) {
  BuildCounterQuery();
  ProduceWave(40);
  sim_.RunUntil(sim_.Now() + 2 * kSecond);
  engine_.TriggerCheckpoint();
  sim_.RunUntil(sim_.Now() + 2 * kSecond);

  engine_.FailNode(2);
  auto ids = hm_.RecoverFailedNode(2);
  sim_.Run();

  ASSERT_EQ(ids.size(), 1u);
  const HandoverStats* stats = hm_.StatsFor(ids[0]);
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->local_fetch);
  // Local fetch is hard-linking: fast and size-independent (paper ~0.2 s).
  EXPECT_LE(stats->state_fetch_us, kSecond);
  EXPECT_GT(stats->state_load_us, 0);
}

}  // namespace
}  // namespace rhino::rhino
