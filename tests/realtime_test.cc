#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/source.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/realtime_executor.h"
#include "state/lsm_state_backend.h"

/// End-to-end proof of the execution substrate: the SAME protocol stack the
/// simulation tests drive (engine + chain replication + handover manager +
/// LSM state) running on `RealtimeExecutor` with 4 worker threads — node
/// strands genuinely in parallel, wall-clock timers, records materialized
/// in the embedded LSM store. Exactly-once assertions are identical to the
/// deterministic suite's; what this file adds is that they hold under real
/// concurrency (and, in the TSan CI lane, that the runtime is race-free).

namespace rhino::rhino {
namespace {

using dataflow::Batch;
using dataflow::Engine;
using dataflow::EngineOptions;
using dataflow::ExecutionGraph;
using dataflow::ProcessingProfile;
using dataflow::QueryDef;
using dataflow::Record;

class RealtimeEndToEndTest : public ::testing::Test {
 protected:
  static constexpr int kPartitions = 2;
  static constexpr int kNodeThreads = 4;

  RealtimeEndToEndTest()
      : exec_(kNodeThreads),
        cluster_(&exec_, 5),
        broker_({0}),
        engine_(&exec_, &cluster_, &broker_, SmallEngineOptions()),
        rm_({1, 2, 3, 4}, 1),
        runtime_(&cluster_, &rm_),
        storage_(&cluster_, &runtime_),
        hm_(&engine_, &rm_, &runtime_) {
    broker_.CreateTopic("events", kPartitions);
    engine_.SetCheckpointStorage(&storage_);
  }

  static EngineOptions SmallEngineOptions() {
    EngineOptions opts;
    opts.num_key_groups = 64;
    opts.vnodes_per_instance = 2;
    return opts;
  }

  void BuildCounterQuery(int parallelism = 4) {
    QueryDef def;
    def.AddSource("src", "events", kPartitions)
        .AddStateful("counter", parallelism, {"src"},
                     [this](Engine* engine, int subtask, int node) {
                       auto backend = state::LsmStateBackend::Open(
                           &env_, "/state/c" + std::to_string(subtask),
                           "counter", static_cast<uint32_t>(subtask));
                       RHINO_CHECK(backend.ok());
                       return std::make_unique<dataflow::KeyedCounterOperator>(
                           engine, "counter", subtask, node,
                           ProcessingProfile(), std::move(backend).MoveValue());
                     })
        .AddSink("sink", 1, {"counter"});
    graph_ = ExecutionGraph::Build(&engine_, def, {1, 2, 3, 4});
    graph_->sinks("sink")[0]->SetCollector([this](const Record& r) {
      // Fires on the sink's node strand while the main thread may be
      // appending to the broker: guard the map.
      std::lock_guard<std::mutex> lock(counts_mu_);
      uint64_t c = std::stoull(r.payload);
      if (c > counts_[r.key]) counts_[r.key] = c;
    });

    std::vector<InstanceInfo> infos;
    for (auto* inst : graph_->stateful("counter")) {
      infos.push_back({"counter", static_cast<uint32_t>(inst->subtask()),
                       inst->node_id(), 1});
    }
    rm_.BuildGroups(infos);
    graph_->StartSources();
  }

  /// Appends one record per key from the test's main thread — a producer
  /// genuinely concurrent with the node strands consuming.
  void ProduceWave(uint64_t keys) {
    for (uint64_t key = 0; key < keys; ++key) {
      Batch batch;
      batch.create_time = exec_.Now();
      batch.count = 1;
      batch.bytes = 8;
      batch.records.push_back(Record{key, exec_.Now(), 8, "x"});
      broker_.topic("events")
          .partition(static_cast<int>(key) % kPartitions)
          .Append(std::move(batch));
    }
  }

  uint64_t CountOf(uint64_t key) {
    std::lock_guard<std::mutex> lock(counts_mu_);
    return counts_[key];
  }

  runtime::RealtimeExecutor exec_;
  sim::Cluster cluster_;
  broker::Broker broker_;
  lsm::MemEnv env_;
  Engine engine_;
  ReplicationManager rm_;
  ReplicationRuntime runtime_;
  RhinoCheckpointStorage storage_;
  HandoverManager hm_;
  std::unique_ptr<ExecutionGraph> graph_;
  std::mutex counts_mu_;
  std::map<uint64_t, uint64_t> counts_;
};

TEST_F(RealtimeEndToEndTest, ChainReplicationDeliversCheckpoints) {
  BuildCounterQuery();
  ProduceWave(40);
  exec_.Drain();
  engine_.TriggerCheckpoint();
  exec_.Drain();

  ASSERT_NE(engine_.LastCompletedCheckpoint(), nullptr);
  EXPECT_EQ(runtime_.checkpoints_replicated(), 4u) << "one per instance";
  for (auto* inst : graph_->stateful("counter")) {
    auto subtask = static_cast<uint32_t>(inst->subtask());
    for (int node : rm_.Group("counter", subtask)) {
      const ReplicaState* rep = runtime_.ReplicaOn("counter", subtask, node);
      ASSERT_NE(rep, nullptr) << "counter#" << subtask << " on " << node;
      EXPECT_EQ(rep->latest_checkpoint_id,
                engine_.LastCompletedCheckpoint()->id);
    }
  }
}

TEST_F(RealtimeEndToEndTest, HandoverPreservesCountsExactlyOnce) {
  BuildCounterQuery();
  ProduceWave(30);
  exec_.Drain();
  engine_.TriggerCheckpoint();
  exec_.Drain();

  // Move ALL of instance 0's vnodes to instance 1 while the query runs.
  hm_.TriggerLoadBalance("counter", 0, 1, 1.0);
  ProduceWave(30);
  exec_.Drain();

  ASSERT_FALSE(engine_.handovers().empty());
  for (const auto& record : engine_.SnapshotHandovers()) {
    EXPECT_TRUE(record.completed);
  }
  for (uint64_t key = 0; key < 30; ++key) {
    EXPECT_EQ(CountOf(key), 2u) << "key " << key;
  }
  EXPECT_TRUE(graph_->stateful("counter")[0]->owned_vnodes().empty());
}

TEST_F(RealtimeEndToEndTest, FailureRecoveryIsExactlyOnce) {
  BuildCounterQuery();
  ProduceWave(30);
  exec_.Drain();
  engine_.TriggerCheckpoint();
  exec_.Drain();
  ASSERT_NE(engine_.LastCompletedCheckpoint(), nullptr);

  // Records after the checkpoint are lost with the failed instance and
  // must be replayed from the broker by the handover targets.
  ProduceWave(30);
  exec_.Drain();

  engine_.FailNode(1);
  auto handovers = hm_.RecoverFailedNode(1);
  ASSERT_FALSE(handovers.empty());
  exec_.Drain();

  ProduceWave(30);
  exec_.Drain();

  for (const auto& record : engine_.SnapshotHandovers()) {
    EXPECT_TRUE(record.completed);
  }
  // Every key was produced three times; no count may be lost or doubled.
  for (uint64_t key = 0; key < 30; ++key) {
    EXPECT_EQ(CountOf(key), 3u) << "key " << key;
  }
  EXPECT_TRUE(graph_->stateful("counter")[0]->halted());
  for (uint32_t v = 0; v < engine_.routing("counter")->map().num_vnodes();
       ++v) {
    EXPECT_NE(engine_.routing("counter")->InstanceForVnode(v), 0u);
  }
}

TEST_F(RealtimeEndToEndTest, ConcurrentCheckpointsUnderLoad) {
  // Several checkpoint rounds interleaved with production: exercises the
  // barrier alignment machinery while producer and node strands race.
  BuildCounterQuery();
  for (int round = 0; round < 3; ++round) {
    ProduceWave(20);
    exec_.Drain();
    engine_.TriggerCheckpoint();
    exec_.Drain();
  }
  ASSERT_NE(engine_.LastCompletedCheckpoint(), nullptr);
  EXPECT_EQ(engine_.checkpoints().size(), 3u);
  for (const auto& record : engine_.checkpoints()) {
    EXPECT_TRUE(record.completed) << "checkpoint " << record.id;
  }
  for (uint64_t key = 0; key < 20; ++key) {
    EXPECT_EQ(CountOf(key), 3u) << "key " << key;
  }
}

}  // namespace
}  // namespace rhino::rhino
