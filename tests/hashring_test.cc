#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hashring/key_groups.h"

namespace rhino::hashring {
namespace {

TEST(KeyGroupTest, StableMapping) {
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(KeyGroupFor(key, 1 << 15), KeyGroupFor(key, 1 << 15));
  }
}

TEST(KeyGroupTest, WithinBounds) {
  const uint32_t n = 1 << 15;
  for (uint64_t key = 0; key < 10000; ++key) {
    EXPECT_LT(KeyGroupFor(key, n), n);
  }
}

TEST(KeyGroupTest, RoughlyUniformOverGroups) {
  const uint32_t n = 64;
  std::map<uint32_t, int> counts;
  for (uint64_t key = 0; key < 64000; ++key) ++counts[KeyGroupFor(key, n)];
  for (const auto& [kg, c] : counts) {
    EXPECT_GT(c, 700) << "key group " << kg;
    EXPECT_LT(c, 1300) << "key group " << kg;
  }
}

TEST(VirtualNodeMapTest, RangesPartitionKeyGroups) {
  VirtualNodeMap map(1 << 15, /*parallelism=*/64, /*vnodes_per_instance=*/4);
  EXPECT_EQ(map.num_vnodes(), 256u);
  uint32_t covered = 0;
  uint32_t prev_end = 0;
  for (uint32_t v = 0; v < map.num_vnodes(); ++v) {
    const KeyGroupRange& r = map.range(v);
    EXPECT_EQ(r.begin, prev_end) << "ranges must be contiguous";
    EXPECT_GT(r.end, r.begin);
    covered += r.size();
    prev_end = r.end;
  }
  EXPECT_EQ(covered, 1u << 15);
}

TEST(VirtualNodeMapTest, UnevenDivisionDiffersByAtMostOne) {
  VirtualNodeMap map(/*num_key_groups=*/10, /*parallelism=*/3,
                     /*vnodes_per_instance=*/1);
  uint32_t min_size = ~0u, max_size = 0;
  for (uint32_t v = 0; v < map.num_vnodes(); ++v) {
    min_size = std::min(min_size, map.range(v).size());
    max_size = std::max(max_size, map.range(v).size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(VirtualNodeMapTest, VnodeForKeyGroupInvertsRanges) {
  VirtualNodeMap map(1000, 8, 4);
  for (uint32_t kg = 0; kg < 1000; ++kg) {
    uint32_t v = map.VnodeForKeyGroup(kg);
    EXPECT_TRUE(map.range(v).Contains(kg)) << "kg=" << kg << " vnode=" << v;
  }
}

TEST(VirtualNodeMapTest, VnodeForKeyConsistentWithKeyGroup) {
  VirtualNodeMap map(1 << 15, 8, 4);
  for (uint64_t key = 0; key < 5000; ++key) {
    uint32_t kg = KeyGroupFor(key, map.num_key_groups());
    EXPECT_EQ(map.VnodeForKey(key), map.VnodeForKeyGroup(kg));
  }
}

TEST(RoutingTableTest, DefaultAssignmentIsContiguousBlocks) {
  VirtualNodeMap map(1024, /*parallelism=*/4, /*vnodes_per_instance=*/4);
  RoutingTable table(&map);
  for (uint32_t v = 0; v < map.num_vnodes(); ++v) {
    EXPECT_EQ(table.InstanceForVnode(v), v / 4);
  }
  EXPECT_EQ(table.VnodesOfInstance(0),
            (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(RoutingTableTest, ReassignMovesExactlyTheSelectedVnode) {
  VirtualNodeMap map(1024, 4, 4);
  RoutingTable table(&map);
  uint64_t v0 = table.version();
  table.Assign(5, 3);  // vnode 5 (instance 1) -> instance 3
  EXPECT_EQ(table.InstanceForVnode(5), 3u);
  EXPECT_EQ(table.InstanceForVnode(4), 1u);
  EXPECT_EQ(table.InstanceForVnode(6), 1u);
  EXPECT_EQ(table.version(), v0 + 1);
}

TEST(RoutingTableTest, KeysFollowVnodeReassignment) {
  VirtualNodeMap map(1024, 4, 4);
  RoutingTable table(&map);
  // Find a key routed through vnode 5.
  uint64_t key = 0;
  while (map.VnodeForKey(key) != 5) ++key;
  EXPECT_EQ(table.InstanceForKey(key), 1u);
  table.Assign(5, 2);
  EXPECT_EQ(table.InstanceForKey(key), 2u);
}

TEST(RoutingTableTest, MovingHalfTheVnodesBalancesLoad) {
  // The paper's load-balancing experiment moves half the virtual nodes of
  // an instance to another one.
  VirtualNodeMap map(1 << 15, 2, 4);
  RoutingTable table(&map);
  auto vnodes = table.VnodesOfInstance(0);
  ASSERT_EQ(vnodes.size(), 4u);
  table.Assign(vnodes[0], 1);
  table.Assign(vnodes[1], 1);
  EXPECT_EQ(table.VnodesOfInstance(0).size(), 2u);
  EXPECT_EQ(table.VnodesOfInstance(1).size(), 6u);

  // Key-space share follows: roughly 1/4 of keys stay at instance 0.
  int at0 = 0;
  const int kKeys = 20000;
  for (uint64_t key = 0; key < kKeys; ++key) {
    if (table.InstanceForKey(key) == 0) ++at0;
  }
  EXPECT_NEAR(static_cast<double>(at0) / kKeys, 0.25, 0.03);
}

}  // namespace
}  // namespace rhino::hashring
