#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/db.h"
#include "lsm/env.h"
#include "lsm/fault_env.h"
#include "lsm/write_batch.h"

/// Concurrency coverage for the shared LSM layers: the realtime executor
/// runs node strands on OS threads, and state backends on different strands
/// share one MemEnv and one process-wide BlockCache, while checkpoint
/// persistence reads a DB its owner strand keeps writing. These tests hammer
/// exactly those shapes; under the TSan CI lane they double as race
/// detectors for the store-wide locks added with the execution substrate.

namespace rhino::lsm {
namespace {

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

/// Options tuned so a few thousand writes cross every interesting internal
/// boundary (memtable flush, L0 compaction) while a test stays fast.
Options SmallStoreOptions() {
  Options opts;
  opts.memtable_bytes = 16 * 1024;
  opts.target_file_bytes = 8 * 1024;
  opts.level_base_bytes = 32 * 1024;
  opts.l0_compaction_trigger = 2;
  return opts;
}

TEST(BlockCacheConcurrencyTest, MixedLookupInsertEraseStaysWithinBudget) {
  BlockCache cache(64 * 1024);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      uint64_t table_id = static_cast<uint64_t>(t % 4);
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint32_t block = static_cast<uint32_t>(i % 32);
        if (auto hit = cache.Lookup(table_id, block)) {
          ASSERT_EQ(hit->size(), 512u);
        } else {
          cache.Insert(table_id, block,
                       std::make_shared<const std::string>(512, 'b'));
        }
        if (i % 500 == 499) cache.EraseTable(table_id);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_LE(cache.usage_bytes(), cache.capacity_bytes());
  EXPECT_LE(cache.peak_usage_bytes(), cache.capacity_bytes());
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

TEST(DBConcurrencyTest, ReadersSeeConsistentValuesDuringFlushesAndCompactions) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallStoreOptions());
  ASSERT_TRUE(db.ok());

  // Enough distinct keys that the live set alone overflows the memtable
  // (overwrites replace in place, so key count — not write count — is what
  // forces flushes). Each key's value is "v<round>" plus padding; the
  // writer raises rounds monotonically, so a reader must observe some
  // complete "v<n>", never torn bytes.
  constexpr int kKeys = 256;
  constexpr int kRounds = 20;
  auto value_for = [](int round) {
    return "v" + std::to_string(round) + std::string(120, '.');
  };
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int round = 0; round < kRounds; ++round) {
      for (int k = 0; k < kKeys; ++k) {
        ASSERT_TRUE((*db)->Put(Key(k), value_for(round)).ok());
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int k = t;
      while (!done.load()) {
        std::string value;
        Status s = (*db)->Get(Key(k % kKeys), &value);
        if (s.ok()) {
          ASSERT_GE(value.size(), 2u);
          ASSERT_EQ(value[0], 'v');
          int round = std::stoi(value.substr(1));
          ASSERT_GE(round, 0);
          ASSERT_LT(round, kRounds);
        } else {
          ASSERT_TRUE(s.IsNotFound());
        }
        ++k;
      }
    });
  }
  // A stats poller, standing in for checkpoint persistence and metrics
  // queries reading sizes while the owner commits.
  std::thread poller([&] {
    while (!done.load()) {
      (*db)->ApproximateSize();
      (*db)->NumTableFiles();
      (*db)->OpenTableCount();
      (*db)->flush_count();
    }
  });

  writer.join();
  for (auto& th : readers) th.join();
  poller.join();

  EXPECT_GT((*db)->flush_count(), 0u) << "test must cross the flush path";
  for (int k = 0; k < kKeys; ++k) {
    std::string value;
    ASSERT_TRUE((*db)->Get(Key(k), &value).ok());
    EXPECT_EQ(value, value_for(kRounds - 1));
  }
}

TEST(DBConcurrencyTest, ParallelWritersOnDisjointRangesAllLand) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallStoreOptions());
  ASSERT_TRUE(db.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int k = t * kPerThread + i;
        if (i % 10 == 0) {
          WriteBatch batch;
          batch.Put(Key(k), "batched");
          ASSERT_TRUE((*db)->Write(batch).ok());
        } else {
          ASSERT_TRUE((*db)->Put(Key(k), "direct").ok());
        }
      }
    });
  }
  for (auto& th : writers) th.join();

  for (int k = 0; k < kThreads * kPerThread; ++k) {
    std::string value;
    ASSERT_TRUE((*db)->Get(Key(k), &value).ok()) << Key(k);
  }
}

TEST(DBConcurrencyTest, IteratorSnapshotIsStableWhileWriterProceeds) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallStoreOptions());
  ASSERT_TRUE(db.ok());

  constexpr int kKeys = 300;
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE((*db)->Put(Key(k), "before").ok());
  }

  auto iter = (*db)->NewIterator();
  ASSERT_TRUE(iter.ok());

  // Overwrite everything (forcing flushes/compactions that delete the
  // very tables the snapshot reads through) while the iterator drains.
  std::thread writer([&] {
    for (int k = 0; k < kKeys; ++k) {
      ASSERT_TRUE((*db)->Put(Key(k), "after-the-snapshot").ok());
    }
    ASSERT_TRUE((*db)->CompactRange().ok());
  });

  int seen = 0;
  for (; iter->Valid(); iter->Next()) {
    EXPECT_EQ(iter->value(), "before") << iter->key();
    ++seen;
  }
  writer.join();
  EXPECT_EQ(seen, kKeys);

  std::string value;
  ASSERT_TRUE((*db)->Get(Key(0), &value).ok());
  EXPECT_EQ(value, "after-the-snapshot");
}

TEST(DBConcurrencyTest, CheckpointWhileWriting) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", SmallStoreOptions());
  ASSERT_TRUE(db.ok());
  for (int k = 0; k < 200; ++k) {
    ASSERT_TRUE((*db)->Put(Key(k), "base").ok());
  }

  // Checkpoints race with a writer — the shape of Rhino's checkpoint
  // persistence running off-strand from the operator's commits.
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int k = 0; k < 2000; ++k) {
      ASSERT_TRUE((*db)->Put(Key(k % 400), "live-" + std::to_string(k)).ok());
    }
    done.store(true);
  });

  int checkpoints = 0;
  while (!done.load()) {
    auto info =
        (*db)->CreateCheckpoint("/ckpt" + std::to_string(checkpoints));
    ASSERT_TRUE(info.ok());
    EXPECT_FALSE(info->files.empty());
    ++checkpoints;
  }
  writer.join();
  ASSERT_GT(checkpoints, 0);

  // Every checkpoint directory must reopen as a consistent store.
  auto reopened = DB::OpenFromCheckpoint(
      &env, "/ckpt" + std::to_string(checkpoints - 1), "/restored");
  ASSERT_TRUE(reopened.ok());
  std::string value;
  ASSERT_TRUE((*reopened)->Get(Key(0), &value).ok());
}

/// Same store, but with flushes/compactions scheduled on the background
/// worker — the configuration the networked node server runs.
Options BackgroundStoreOptions() {
  Options opts = SmallStoreOptions();
  opts.background_maintenance = true;
  return opts;
}

TEST(DBBackgroundTest, IteratorSnapshotStableWhileBackgroundCompactionRuns) {
  MemEnv env;
  auto db = DB::Open(&env, "/db", BackgroundStoreOptions());
  ASSERT_TRUE(db.ok());

  constexpr int kKeys = 300;
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE((*db)->Put(Key(k), "before").ok());
  }
  ASSERT_TRUE((*db)->WaitForBackgroundWork().ok());

  auto iter = (*db)->NewIterator();
  ASSERT_TRUE(iter.ok());

  // Overwrite everything: the writer only schedules maintenance, so the
  // flushes and compactions that delete the snapshot's tables genuinely run
  // concurrently with the drain below.
  std::thread writer([&] {
    for (int round = 0; round < 4; ++round) {
      for (int k = 0; k < kKeys; ++k) {
        ASSERT_TRUE(
            (*db)->Put(Key(k), "after-" + std::string(100, 'x')).ok());
      }
    }
  });

  int seen = 0;
  for (; iter->Valid(); iter->Next()) {
    EXPECT_EQ(iter->value(), "before") << iter->key();
    ++seen;
  }
  writer.join();
  EXPECT_EQ(seen, kKeys);

  ASSERT_TRUE((*db)->WaitForBackgroundWork().ok());
  EXPECT_GT((*db)->flush_count(), 0u);
}

TEST(DBBackgroundTest, BackgroundFailureSurfacesOnNextWrite) {
  MemEnv base;
  FaultEnv env(&base);
  Options opts = BackgroundStoreOptions();
  // No WAL: the only write-class file operations left are the background
  // flush/compaction ones, so an injected failure is unambiguously a
  // background failure — commits themselves touch no file.
  opts.enable_wal = false;
  auto db = DB::Open(&env, "/db", opts);
  ASSERT_TRUE(db.ok());

  env.SetWriteBudget(0);  // every table build from here on fails

  // Keep writing: commits succeed until a memtable fills and its background
  // flush fails; the sticky error must then surface as the Status of a
  // subsequent write, not vanish into the worker.
  Status write_status;
  for (int k = 0; k < 20000 && write_status.ok(); ++k) {
    write_status = (*db)->Put(Key(k % 512), std::string(100, 'v'));
  }
  ASSERT_FALSE(write_status.ok())
      << "background flush failure never reached a writer";
  EXPECT_FALSE((*db)->WaitForBackgroundWork().ok());

  // The error is sticky: healing the Env does not resurrect the store.
  env.Heal();
  EXPECT_FALSE((*db)->Put(Key(0), "after-heal").ok());
}

TEST(DBBackgroundTest, CleanShutdownWithCompactionInFlight) {
  MemEnv base;
  FaultEnv env(&base);
  auto db = DB::Open(&env, "/db", BackgroundStoreOptions());
  ASSERT_TRUE(db.ok());

  // Slow disk: every file operation sleeps, so the flush + compaction the
  // writes below schedule are still in flight when the DB is destroyed.
  env.SetLatencyUs(2000);
  for (int k = 0; k < 600; ++k) {
    ASSERT_TRUE((*db)->Put(Key(k), std::string(100, 'v')).ok());
  }
  // Destructor must wait for the in-flight maintenance pass (TSan verifies
  // no worker thread outlives the store).
  db->reset();

  // Everything acknowledged — including entries whose flush was mid-air —
  // must survive reopen via SST + WAL recovery.
  env.Heal();
  auto reopened = DB::Open(&env, "/db", BackgroundStoreOptions());
  ASSERT_TRUE(reopened.ok());
  for (int k = 0; k < 600; ++k) {
    std::string value;
    ASSERT_TRUE((*reopened)->Get(Key(k), &value).ok()) << Key(k);
  }
}

}  // namespace
}  // namespace rhino::lsm
