#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baselines/flink_restart.h"
#include "baselines/megaphone.h"
#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/stateful.h"
#include "dfs/dfs.h"
#include "lsm/env.h"
#include "rhino/checkpoint_storage.h"
#include "runtime/sim_executor.h"
#include "state/lsm_state_backend.h"

namespace rhino::baselines {
namespace {

using dataflow::Batch;
using dataflow::Engine;
using dataflow::EngineOptions;
using dataflow::ExecutionGraph;
using dataflow::ProcessingProfile;
using dataflow::QueryDef;
using dataflow::Record;

// ------------------------------------------------------------- Megaphone --

TEST(MegaphoneModelTest, MemoryCeilingMatchesPaper) {
  runtime::SimExecutor sim;
  sim::NodeSpec spec;  // 64 GiB per node
  sim::Cluster cluster(&sim, 8, spec);
  MegaphoneModel model(&cluster, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_TRUE(model.FitsMemory(250 * kGiB));
  EXPECT_TRUE(model.FitsMemory(500 * kGiB));
  EXPECT_FALSE(model.FitsMemory(750 * kGiB)) << "paper: OOM at >= 750 GB";
  EXPECT_FALSE(model.FitsMemory(1000 * kGiB));
}

TEST(MegaphoneModelTest, MigrationTimeScalesWithState) {
  runtime::SimExecutor sim;
  sim::Cluster cluster(&sim, 8);
  MegaphoneModel model(&cluster, {0, 1, 2, 3, 4, 5, 6, 7});
  std::map<uint64_t, SimTime> durations;
  for (uint64_t size : {64ull * kGiB, 128ull * kGiB}) {
    std::map<int, uint64_t> per_origin;
    for (int n = 0; n < 8; ++n) per_origin[n] = size / 8;
    MegaphoneResult result;
    bool done = false;
    model.Migrate(per_origin, size, 1 << 15, [&](MegaphoneResult r) {
      result = r;
      done = true;
    });
    sim.Run();
    ASSERT_TRUE(done);
    EXPECT_FALSE(result.oom);
    durations[size] = result.duration_us;
  }
  EXPECT_GT(durations[128ull * kGiB], durations[64ull * kGiB]);
  EXPECT_NEAR(static_cast<double>(durations[128ull * kGiB]) /
                  static_cast<double>(durations[64ull * kGiB]),
              2.0, 0.3)
      << "migration is throughput-bound: time ~ linear in state";
}

TEST(MegaphoneModelTest, OomReportedWithoutTransfers) {
  runtime::SimExecutor sim;
  sim::Cluster cluster(&sim, 8);
  MegaphoneModel model(&cluster, {0, 1, 2, 3, 4, 5, 6, 7});
  MegaphoneResult result;
  model.Migrate({{0, kGiB}}, 1000 * kGiB, 1 << 15,
                [&](MegaphoneResult r) { result = r; });
  sim.Run();
  EXPECT_TRUE(result.oom);
  EXPECT_EQ(result.bytes_moved, 0u);
}

// --------------------------------------------------------- Flink restart --

class FlinkRestartTest : public ::testing::Test {
 protected:
  FlinkRestartTest()
      : cluster_(&sim_, 5),
        broker_({0}),
        engine_(&sim_, &cluster_, &broker_, SmallEngineOptions()),
        dfs_(&cluster_, {1, 2, 3, 4}),
        storage_(&cluster_, &dfs_) {
    broker_.CreateTopic("events", 2);
    engine_.SetCheckpointStorage(&storage_);
  }

  static EngineOptions SmallEngineOptions() {
    EngineOptions opts;
    opts.num_key_groups = 64;
    opts.vnodes_per_instance = 2;
    return opts;
  }

  void BuildQuery() {
    QueryDef def;
    def.AddSource("src", "events", 2)
        .AddStateful("counter", 4, {"src"},
                     [this](Engine* eng, int subtask, int node) {
                       auto backend = state::LsmStateBackend::Open(
                           &env_, "/state/c" + std::to_string(subtask),
                           "counter", static_cast<uint32_t>(subtask));
                       RHINO_CHECK(backend.ok());
                       return std::make_unique<dataflow::KeyedCounterOperator>(
                           eng, "counter", subtask, node, ProcessingProfile(),
                           std::move(backend).MoveValue());
                     })
        .AddSink("sink", 1, {"counter"});
    graph_ = ExecutionGraph::Build(&engine_, def, {1, 2, 3, 4});
    graph_->sinks("sink")[0]->SetCollector([this](const Record& r) {
      uint64_t c = std::stoull(r.payload);
      if (c > counts_[r.key]) counts_[r.key] = c;
    });
    controller_ = std::make_unique<FlinkRestartController>(
        &engine_, &storage_, [this](const std::string& op, uint32_t subtask) {
          auto backend = state::LsmStateBackend::Open(
              &env_, "/state/restored-" + op + "-" + std::to_string(subtask) +
                         "-" + std::to_string(generation_++),
              op, subtask);
          RHINO_CHECK(backend.ok());
          return std::move(backend).MoveValue();
        });
    graph_->StartSources();
  }

  void ProduceWave(uint64_t keys) {
    for (uint64_t key = 0; key < keys; ++key) {
      Batch b;
      b.create_time = sim_.Now();
      b.count = 1;
      b.bytes = 8;
      b.records.push_back(Record{key, sim_.Now(), 8, "x"});
      broker_.topic("events").partition(static_cast<int>(key % 2)).Append(
          std::move(b));
    }
  }

  runtime::SimExecutor sim_;
  sim::Cluster cluster_;
  broker::Broker broker_;
  lsm::MemEnv env_;
  Engine engine_;
  dfs::DistributedFileSystem dfs_;
  rhino::DfsCheckpointStorage storage_;
  std::unique_ptr<ExecutionGraph> graph_;
  std::unique_ptr<FlinkRestartController> controller_;
  std::map<uint64_t, uint64_t> counts_;
  int generation_ = 0;
};

TEST_F(FlinkRestartTest, RestartRestoresCheckpointAndReplays) {
  BuildQuery();
  ProduceWave(20);
  sim_.RunUntil(sim_.Now() + 2 * kSecond);
  engine_.TriggerCheckpoint();
  sim_.RunUntil(sim_.Now() + 5 * kSecond);
  ASSERT_NE(engine_.LastCompletedCheckpoint(), nullptr);

  // Post-checkpoint records are only in the upstream backup.
  ProduceWave(20);
  sim_.RunUntil(sim_.Now() + 2 * kSecond);

  engine_.FailNode(1);
  bool finished = false;
  RestartBreakdown breakdown;
  controller_->RestartFromLastCheckpoint(1, [&](RestartBreakdown b) {
    breakdown = b;
    finished = true;
  });
  sim_.Run();
  ASSERT_TRUE(finished);
  EXPECT_GT(breakdown.scheduling_us, 0);
  EXPECT_GT(breakdown.state_load_us, 0);

  ProduceWave(20);
  sim_.Run();

  // Exactly-once state semantics across the restart: each key counted 3x.
  for (uint64_t key = 0; key < 20; ++key) {
    EXPECT_EQ(counts_[key], 3u) << "key " << key;
  }
}

TEST_F(FlinkRestartTest, RestartWithoutFailureAlsoWorks) {
  BuildQuery();
  ProduceWave(10);
  sim_.RunUntil(sim_.Now() + 2 * kSecond);
  engine_.TriggerCheckpoint();
  sim_.RunUntil(sim_.Now() + 5 * kSecond);

  bool finished = false;
  controller_->RestartFromLastCheckpoint(-1,
                                         [&](RestartBreakdown) { finished = true; });
  sim_.Run();
  ASSERT_TRUE(finished);

  ProduceWave(10);
  sim_.Run();
  for (uint64_t key = 0; key < 10; ++key) {
    EXPECT_EQ(counts_[key], 2u) << "key " << key;
  }
}

}  // namespace
}  // namespace rhino::baselines
