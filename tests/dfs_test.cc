#include <gtest/gtest.h>

#include "dfs/dfs.h"
#include "runtime/sim_executor.h"

namespace rhino::dfs {
namespace {

sim::NodeSpec Spec() {
  sim::NodeSpec spec;
  spec.net_bytes_per_sec = 1e9;
  spec.disk_read_bytes_per_sec = 2e9;
  spec.disk_write_bytes_per_sec = 1e9;
  spec.net_latency = 0;
  return spec;
}

class DfsTest : public ::testing::Test {
 protected:
  DfsTest() : cluster_(&sim_, 4, Spec()), dfs_(&cluster_, {0, 1, 2, 3}) {}
  runtime::SimExecutor sim_;
  sim::Cluster cluster_;
  DistributedFileSystem dfs_;
};

TEST_F(DfsTest, WriteCreatesReplicatedBlocks) {
  bool done = false;
  dfs_.WriteFile("/f", 300 * kMiB, 0, [&](Status st) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(dfs_.Exists("/f"));
  EXPECT_EQ(dfs_.FileBytes("/f").value(), 300 * kMiB);
  EXPECT_EQ(dfs_.bytes_written(), 300 * kMiB);
}

TEST_F(DfsTest, LocalReadIsDiskOnly) {
  dfs_.RegisterFile("/f", 256 * kMiB, 1);
  SimTime completed = 0;
  dfs_.ReadFile("/f", 1, [&](Status st) {
    EXPECT_TRUE(st.ok());
    completed = sim_.Now();
  });
  sim_.Run();
  EXPECT_GT(dfs_.local_bytes_read(), 0u);
  EXPECT_EQ(dfs_.remote_bytes_read(), 0u);
  EXPECT_EQ(cluster_.node(1).tx().busy_us(), 0) << "no network for local reads";
}

TEST_F(DfsTest, RemoteReadCrossesNetwork) {
  dfs_.RegisterFile("/f", 256 * kMiB, 1);
  // Node 9 does not exist; read from a node holding no replica: node ids
  // are 0..3; find one without a replica by reading from each and checking
  // the counter. Simplest: register from node 1 with replication 2 -> at
  // most nodes {1, x}; read from a third node.
  int reader = -1;
  for (int candidate = 0; candidate < 4; ++candidate) {
    // A read from the writer is local; pick a candidate and check stats.
    if (candidate == 1) continue;
    reader = candidate;
    break;
  }
  uint64_t before = dfs_.remote_bytes_read();
  bool done = false;
  dfs_.ReadFile("/f", reader, [&](Status st) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  sim_.Run();
  EXPECT_TRUE(done);
  // With replication 2 of 4 nodes, a non-writer reader sees at least some
  // remote blocks (possibly all).
  EXPECT_GE(dfs_.remote_bytes_read() + dfs_.local_bytes_read() - before,
            256 * kMiB);
}

TEST_F(DfsTest, ReadScalesWithSize) {
  dfs_.RegisterFile("/small", 128 * kMiB, 0);
  dfs_.RegisterFile("/large", 1024 * kMiB, 0);
  SimTime t_small = 0, t_large = 0;
  dfs_.ReadFile("/small", 2, [&](Status) { t_small = sim_.Now(); });
  sim_.Run();
  SimTime start = sim_.Now();
  dfs_.ReadFile("/large", 2, [&](Status) { t_large = sim_.Now() - start; });
  sim_.Run();
  EXPECT_GT(t_large, 2 * t_small) << "fetch time grows with state size";
}

TEST_F(DfsTest, MissingFileFails) {
  Status result;
  dfs_.ReadFile("/nope", 0, [&](Status st) { result = st; });
  sim_.Run();
  EXPECT_TRUE(result.IsNotFound());
}

TEST_F(DfsTest, ReadSurvivesSingleNodeFailure) {
  dfs_.RegisterFile("/f", 256 * kMiB, 1);
  cluster_.FailNode(1);  // primary replicas gone; secondaries must serve
  Status result = Status::Aborted("pending");
  dfs_.ReadFile("/f", 2, [&](Status st) { result = st; });
  sim_.Run();
  EXPECT_TRUE(result.ok()) << result.ToString();
}

TEST_F(DfsTest, DeleteRemovesFile) {
  dfs_.RegisterFile("/f", kMiB, 0);
  ASSERT_TRUE(dfs_.DeleteFile("/f").ok());
  EXPECT_FALSE(dfs_.Exists("/f"));
  EXPECT_TRUE(dfs_.DeleteFile("/f").IsNotFound());
}

}  // namespace
}  // namespace rhino::dfs
