#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/units.h"
#include "net/driver.h"
#include "net/transport.h"

/// \file multiprocess_e2e_test.cc
/// The distributed end-to-end lane: three real `rhino_node` PROCESSES
/// (forked + exec'd, each with its own LSM directory), coordinated by a
/// `ClusterDriver` over real TCP sockets, hosting a TWO-OPERATOR graph
/// (counter -> rollup through the driver-resident edge log). The run
/// drives a checkpoint, a live handover, a SIGKILL of one node, and
/// recovery — and asserts exactly-once counts at BOTH stages at the end,
/// the acceptance bar of the networked runtime.
///
/// Launch handshake: every node binds port 0 and announces the kernel-
/// assigned port on stdout as `RHINO_NODE_PORT=<port>`; the test parses it
/// from a pipe. Node stderr goes to per-node log files (in
/// `$RHINO_NODE_LOG_DIR` when set — CI uploads that directory as a build
/// artifact on failure, alongside `$RHINO_TRACE_DUMP` traces the nodes
/// write on clean exit).
///
/// `RHINO_NODE_BIN` (compile definition) is the path of the built binary.

namespace rhino::net {
namespace {

constexpr uint32_t kNumVnodes = 16;
constexpr uint64_t kNumKeys = 30;
const char* const kOp = "counter";
/// Downstream stage: fed by `kOp`'s output records through the driver-
/// resident edge log, so the e2e lane covers a multi-operator graph over
/// real TCP — two wire hops per record, per-input replay cursors, and
/// edge replay through recovery.
const char* const kDownstreamOp = "rollup";

struct NodeProc {
  pid_t pid = -1;
  uint16_t port = 0;
};

class MultiProcessClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) /
            ("rhino_e2e_" + std::to_string(::getpid()));
    std::filesystem::create_directories(root_ / "ckpt");
    const char* log_env = std::getenv("RHINO_NODE_LOG_DIR");
    log_dir_ = (log_env != nullptr && *log_env != '\0')
                   ? std::filesystem::path(log_env)
                   : root_ / "logs";
    std::filesystem::create_directories(log_dir_);
  }

  void TearDown() override {
    for (auto& node : nodes_) {
      if (node.pid > 0) {
        ::kill(node.pid, SIGKILL);
        ::waitpid(node.pid, nullptr, 0);
      }
    }
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  /// Forks + execs one rhino_node and parses its port announcement.
  void Launch(size_t id) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::string data_flag =
        "--data-dir=" + (root_ / ("n" + std::to_string(id))).string();
    std::string ckpt_flag = "--ckpt-dir=" + (root_ / "ckpt").string();
    std::string log_path =
        (log_dir_ / ("rhino_node_" + std::to_string(id) + ".log")).string();
    pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      int logfd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (logfd >= 0) {
        ::dup2(logfd, STDERR_FILENO);
        ::close(logfd);
      }
      ::execl(RHINO_NODE_BIN, "rhino_node", "--port=0", data_flag.c_str(),
              ckpt_flag.c_str(), static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    ::close(fds[1]);
    FILE* out = ::fdopen(fds[0], "r");
    ASSERT_NE(out, nullptr);
    char line[256];
    unsigned port = 0;
    while (std::fgets(line, sizeof(line), out) != nullptr) {
      if (std::sscanf(line, "RHINO_NODE_PORT=%u", &port) == 1) break;
    }
    std::fclose(out);
    ASSERT_NE(port, 0u) << "node " << id
                        << " never announced a port (see " << log_path << ")";
    nodes_.push_back(NodeProc{pid, static_cast<uint16_t>(port)});
  }

  /// Reaps a node; returns its exit code (or -1 on abnormal termination).
  int WaitExit(size_t id) {
    int status = 0;
    if (::waitpid(nodes_[id].pid, &status, 0) != nodes_[id].pid) return -1;
    nodes_[id].pid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  void AppendWave(broker::Partition* partition) {
    dataflow::Batch batch;
    for (uint64_t key = 0; key < kNumKeys; ++key) {
      dataflow::Record rec;
      rec.key = key;
      rec.event_time = 1000;
      rec.size = 32;
      batch.records.push_back(rec);
      batch.count += 1;
      batch.bytes += rec.size;
    }
    partition->Append(std::move(batch));
  }

  /// Exactly-once audit over BOTH stages: the counter applies each wave
  /// once, and because it emits one output record per applied input, the
  /// downstream stage must land on the same per-key count — any loss or
  /// duplication on the operator edge shows up here.
  void ExpectAllCounts(ClusterDriver* driver, uint64_t waves) {
    for (const char* op : {kOp, kDownstreamOp}) {
      for (uint64_t key = 0; key < kNumKeys; ++key) {
        auto count = driver->QueryCount(op, key);
        ASSERT_TRUE(count.ok()) << op << ": " << count.status().ToString();
        EXPECT_EQ(*count, waves) << op << " key " << key;
      }
    }
  }

  std::filesystem::path root_;
  std::filesystem::path log_dir_;
  std::vector<NodeProc> nodes_;
};

TEST_F(MultiProcessClusterTest, CheckpointHandoverSigkillRecoveryExactlyOnce) {
  for (size_t id = 0; id < 3; ++id) {
    Launch(id);
    if (HasFatalFailure()) return;
  }

  std::vector<std::string> endpoints;
  for (const auto& node : nodes_) {
    endpoints.push_back("127.0.0.1:" + std::to_string(node.port));
  }
  RpcClientOptions options;
  options.retry.initial_backoff_us = 2 * kMillisecond;
  options.retry.max_backoff_us = 100 * kMillisecond;
  options.retry.max_attempts = 5;
  TcpTransport transport(options);
  ClusterDriver driver(&transport, endpoints);
  ASSERT_TRUE(driver.ConnectAll().ok());
  ASSERT_TRUE(driver.AddOperator(kOp, kNumVnodes).ok());
  ASSERT_TRUE(driver.AddOperator(kDownstreamOp, kNumVnodes).ok());
  broker::Partition partition(0);
  driver.AddPartition(&partition);
  ASSERT_TRUE(driver.ConnectPartition(kOp, 0).ok());
  ASSERT_TRUE(driver.ConnectOperators(kOp, kDownstreamOp).ok());

  // Waves 1-2, then checkpoint #1: every node persists its image into the
  // shared ckpt dir and chain-replicates it to its ring successor.
  AppendWave(&partition);
  AppendWave(&partition);
  auto pumped = driver.Pump();
  ASSERT_TRUE(pumped.ok()) << pumped.status().ToString();
  EXPECT_EQ(pumped->applied, 2 * kNumKeys * 2);  // both stages apply each wave
  auto ckpt = driver.Checkpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_EQ(ckpt->nodes, 3u);
  EXPECT_EQ(ckpt->replicated_nodes, 3u);
  ExpectAllCounts(&driver, 2);

  // Live handover: everything node 0 owns migrates to node 1 over RPC —
  // state and replay watermarks — while the cluster keeps counting.
  std::vector<uint32_t> moved = driver.VnodesOwnedBy(kOp, 0);
  ASSERT_FALSE(moved.empty());
  ASSERT_TRUE(driver.TriggerHandover(kOp, 0, 1, moved).ok());
  EXPECT_TRUE(driver.VnodesOwnedBy(kOp, 0).empty());
  AppendWave(&partition);  // wave 3
  ASSERT_TRUE(driver.Pump().ok());
  ExpectAllCounts(&driver, 3);
  // Checkpoint #2 records the post-handover ownership.
  ASSERT_TRUE(driver.Checkpoint().ok());

  // Wave 4 lands after the checkpoint: the doomed node's share lives only
  // in its memory + local disk and must come back via upstream replay.
  AppendWave(&partition);
  ASSERT_TRUE(driver.Pump().ok());
  ExpectAllCounts(&driver, 4);

  // Fail-stop: SIGKILL node 2 (no shutdown handler runs — a real crash).
  ASSERT_EQ(::kill(nodes_[2].pid, SIGKILL), 0);
  ::waitpid(nodes_[2].pid, nullptr, 0);
  nodes_[2].pid = -1;
  EXPECT_EQ(driver.ProbeFailures(), (std::vector<uint32_t>{2}));

  // Recovery: node 0 (ring successor) promotes its in-memory replica of
  // node 2, the driver rewinds the partition cursor to the restored
  // watermarks, and replay re-applies wave 4 — survivors dedup it.
  ASSERT_TRUE(driver.RecoverNode(2).ok());
  EXPECT_FALSE(driver.IsAlive(2));
  if (!NetPipelineEnabled()) {
    // Blocking mode: the replica is frozen at checkpoint #2, so the
    // cursor must rewind past wave 4 and the replay must re-apply it. In
    // continuous mode the stream may have made the replica current
    // before the SIGKILL, leaving nothing to rewind — the exact counts
    // below are the invariant that holds either way.
    EXPECT_LT(driver.cursor(0), partition.end_offset());
  }
  auto replayed = driver.Pump();
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  if (!NetPipelineEnabled()) {
    EXPECT_GT(replayed->applied, 0u);
    EXPECT_GT(replayed->deduped, 0u);
  }
  ExpectAllCounts(&driver, 4);

  // Steady state on the survivors, then graceful shutdown.
  AppendWave(&partition);  // wave 5
  ASSERT_TRUE(driver.Pump().ok());
  ExpectAllCounts(&driver, 5);

  driver.Shutdown();
  EXPECT_EQ(WaitExit(0), 0);
  EXPECT_EQ(WaitExit(1), 0);
}

}  // namespace
}  // namespace rhino::net
