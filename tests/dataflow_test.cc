#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/source.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "runtime/sim_executor.h"
#include "state/lsm_state_backend.h"

namespace rhino::dataflow {
namespace {

/// Harness: 1 broker node + 3 worker nodes, one topic, and helpers to
/// build small real-mode pipelines.
class DataflowTest : public ::testing::Test {
 protected:
  static constexpr int kBrokerNode = 0;
  static constexpr int kPartitions = 2;

  DataflowTest()
      : cluster_(&sim_, 4),
        broker_({kBrokerNode}),
        engine_(&sim_, &cluster_, &broker_, SmallEngineOptions()) {
    broker_.CreateTopic("events", kPartitions);
    broker_.CreateTopic("left", kPartitions);
    broker_.CreateTopic("right", kPartitions);
  }

  static EngineOptions SmallEngineOptions() {
    EngineOptions opts;
    opts.num_key_groups = 64;
    opts.vnodes_per_instance = 2;
    return opts;
  }

  StatefulFactory CounterFactory() {
    return [this](Engine* engine, int subtask, int node) {
      auto backend = state::LsmStateBackend::Open(
          &env_, "/state/counter-" + std::to_string(subtask), "counter",
          static_cast<uint32_t>(subtask));
      RHINO_CHECK(backend.ok());
      return std::make_unique<KeyedCounterOperator>(
          engine, "counter", subtask, node, ProcessingProfile(),
          std::move(backend).MoveValue());
    };
  }

  StatefulFactory JoinFactory() {
    return [this](Engine* engine, int subtask, int node) {
      auto backend = state::LsmStateBackend::Open(
          &env_, "/state/join-" + std::to_string(subtask), "join",
          static_cast<uint32_t>(subtask));
      RHINO_CHECK(backend.ok());
      return std::make_unique<SymmetricHashJoinOperator>(
          engine, "join", subtask, node, ProcessingProfile(),
          std::move(backend).MoveValue());
    };
  }

  /// Appends a single-record batch to a topic partition.
  void Produce(const std::string& topic, int partition, uint64_t key,
               const std::string& payload) {
    Batch batch;
    batch.create_time = sim_.Now();
    batch.count = 1;
    batch.bytes = payload.size();
    Record r;
    r.key = key;
    r.event_time = sim_.Now();
    r.size = static_cast<uint32_t>(payload.size());
    r.payload = payload;
    batch.records.push_back(std::move(r));
    broker_.topic(topic).partition(partition).Append(std::move(batch));
  }

  runtime::SimExecutor sim_;
  sim::Cluster cluster_;
  broker::Broker broker_;
  lsm::MemEnv env_;
  Engine engine_;
};

TEST_F(DataflowTest, SourceToSinkDeliversAllRecords) {
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});
  graph->StartSources();

  for (int i = 0; i < 50; ++i) {
    Produce("events", i % kPartitions, static_cast<uint64_t>(i % 10), "x");
  }
  sim_.Run();

  // Every input record produces exactly one (key, count) output record.
  EXPECT_EQ(graph->sinks("sink")[0]->records_consumed(), 50u);
}

TEST_F(DataflowTest, CounterStateAccumulatesPerKey) {
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});

  std::map<uint64_t, uint64_t> final_count;
  graph->sinks("sink")[0]->SetCollector([&](const Record& r) {
    uint64_t count = std::stoull(r.payload);
    if (count > final_count[r.key]) final_count[r.key] = count;
  });
  graph->StartSources();

  for (int i = 0; i < 60; ++i) {
    Produce("events", i % kPartitions, static_cast<uint64_t>(i % 3), "x");
  }
  sim_.Run();

  EXPECT_EQ(final_count[0], 20u);
  EXPECT_EQ(final_count[1], 20u);
  EXPECT_EQ(final_count[2], 20u);
}

TEST_F(DataflowTest, KeyedExchangePartitionsByVnodeOwner) {
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});
  graph->StartSources();

  for (uint64_t key = 0; key < 40; ++key) {
    Produce("events", static_cast<int>(key) % kPartitions, key, "x");
  }
  sim_.Run();

  // Each instance must have exactly the state of its owned vnodes.
  auto* table = engine_.routing("counter");
  for (StatefulInstance* inst : graph->stateful("counter")) {
    for (uint64_t key = 0; key < 40; ++key) {
      uint32_t vnode = table->map().VnodeForKey(key);
      auto entries = inst->backend()->ScanVnode(vnode);
      ASSERT_TRUE(entries.ok());
      bool owns = table->InstanceForVnode(vnode) ==
                  static_cast<uint32_t>(inst->subtask());
      if (!owns) {
        EXPECT_TRUE(entries->empty());
      }
    }
  }
}

TEST_F(DataflowTest, LatencyListenerReceivesSamples) {
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});

  int samples = 0;
  SimTime max_latency = 0;
  engine_.SetLatencyListener([&](const std::string& op, SimTime, SimTime lat) {
    EXPECT_EQ(op, "counter");
    EXPECT_GE(lat, 0);
    max_latency = std::max(max_latency, lat);
    ++samples;
  });
  graph->StartSources();
  for (int i = 0; i < 10; ++i) Produce("events", i % kPartitions, 1, "x");
  sim_.Run();

  EXPECT_GT(samples, 0);
  EXPECT_GT(max_latency, 0);  // network + processing takes modeled time
}

TEST_F(DataflowTest, SymmetricJoinEmitsMatches) {
  QueryDef def;
  def.AddSource("src_l", "left", kPartitions)
      .AddSource("src_r", "right", kPartitions)
      .AddStateful("join", 2, {"src_l", "src_r"}, JoinFactory())
      .AddSink("sink", 1, {"join"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});

  std::multiset<std::string> outputs;
  graph->sinks("sink")[0]->SetCollector(
      [&](const Record& r) { outputs.insert(r.payload); });
  graph->StartSources();

  Produce("left", 0, 7, "L1");
  Produce("left", 1, 7, "L2");
  Produce("right", 0, 7, "R1");
  Produce("right", 1, 8, "R2");  // no left match
  sim_.Run();

  EXPECT_EQ(outputs, (std::multiset<std::string>{"L1|R1", "L2|R1"}));
}

TEST_F(DataflowTest, CheckpointCompletesWithDescriptors) {
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});
  graph->StartSources();

  for (int i = 0; i < 20; ++i) Produce("events", i % kPartitions, 5, "x");
  sim_.Run();

  engine_.TriggerCheckpoint();
  sim_.Run();

  const CheckpointRecord* ckpt = engine_.LastCompletedCheckpoint();
  ASSERT_NE(ckpt, nullptr);
  EXPECT_TRUE(ckpt->completed);
  EXPECT_GE(ckpt->complete_time, ckpt->trigger_time);
  // 2 sources + 2 stateful instances snapshot.
  EXPECT_EQ(ckpt->descriptors.size(), 4u);
  // Source snapshots carry their replay offsets.
  const auto& src0 = ckpt->descriptors.at("src#0");
  EXPECT_EQ(src0.source_offsets.at(0), 10u);
  // Stateful snapshots list checkpoint files.
  const auto& counter0 = ckpt->descriptors.at("counter#0");
  EXPECT_FALSE(counter0.files.empty());
}

TEST_F(DataflowTest, PeriodicCheckpointsRecur) {
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});
  graph->StartSources();

  engine_.StartPeriodicCheckpoints(10 * kSecond);
  sim_.RunUntil(35 * kSecond);
  engine_.StopPeriodicCheckpoints();
  sim_.Run();

  EXPECT_EQ(engine_.checkpoints().size(), 3u);
  for (const auto& c : engine_.checkpoints()) EXPECT_TRUE(c.completed);
}

TEST_F(DataflowTest, FailNodeHaltsItsInstances) {
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});
  graph->StartSources();
  sim_.Run();

  int live_before = engine_.CountLiveInstances();
  engine_.FailNode(1);  // src#0, counter#0, and sink#0 live on node 1
  EXPECT_TRUE(graph->sources("src")[0]->halted());
  EXPECT_TRUE(graph->stateful("counter")[0]->halted());
  EXPECT_TRUE(graph->sinks("sink")[0]->halted());
  EXPECT_FALSE(graph->stateful("counter")[1]->halted());
  EXPECT_FALSE(graph->sources("src")[1]->halted());
  EXPECT_EQ(engine_.CountLiveInstances(), live_before - 3);
}

// ---------------------------------------------------------- handover ----

/// Minimal delegate: extract the moved vnodes at the origin's alignment
/// point, deliver them to the target after a modeled delay.
class InlineDelegate : public HandoverDelegate {
 public:
  InlineDelegate(runtime::SimExecutor* sim, SimTime delay)
      : sim_(sim), delay_(delay) {}

  void TransferState(const HandoverSpec& spec, const HandoverMove& move,
                     StatefulInstance* origin, StatefulInstance* target,
                     std::function<void()> done) override {
    ASSERT_NE(origin, nullptr);
    auto blob = origin->backend()->ExtractVnodes(move.vnodes);
    ASSERT_TRUE(blob.ok());
    auto marks = origin->GetWatermarks(move.vnodes);
    HandoverSpec spec_copy = spec;
    HandoverMove move_copy = move;
    sim_->Schedule(delay_, [=, blob = std::move(blob).MoveValue()] {
      RHINO_CHECK_OK(target->backend()->IngestVnodes(blob, false));
      target->MergeWatermarks(marks);
      origin->CompleteHandoverAsOrigin(spec_copy, move_copy);
      target->CompleteHandoverAsTarget(spec_copy, move_copy);
      done();
    });
    ++transfers_;
  }

  int transfers() const { return transfers_; }

 private:
  runtime::SimExecutor* sim_;
  SimTime delay_;
  int transfers_ = 0;
};

TEST_F(DataflowTest, HandoverMovesVnodesAndState) {
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});
  InlineDelegate delegate(&sim_, 5 * kMillisecond);
  engine_.SetHandoverDelegate(&delegate);
  graph->StartSources();

  for (uint64_t key = 0; key < 30; ++key) {
    Produce("events", static_cast<int>(key) % kPartitions, key, "x");
  }
  sim_.Run();

  // Move all vnodes of instance 0 to instance 1.
  auto vnodes = engine_.routing("counter")->VnodesOfInstance(0);
  ASSERT_FALSE(vnodes.empty());
  auto spec = std::make_shared<HandoverSpec>();
  spec->id = 1;
  spec->operator_name = "counter";
  spec->moves = {HandoverMove{0, 1, vnodes}};
  uint64_t origin_bytes_before =
      graph->stateful("counter")[0]->backend()->SizeBytes();
  EXPECT_GT(origin_bytes_before, 0u);

  engine_.StartHandover(spec);
  sim_.Run();

  ASSERT_EQ(engine_.handovers().size(), 1u);
  EXPECT_TRUE(engine_.handovers()[0].completed);
  EXPECT_EQ(delegate.transfers(), 1);
  // Origin dropped the state; target now owns it.
  EXPECT_EQ(graph->stateful("counter")[0]->backend()->SizeBytes(), 0u);
  EXPECT_GE(graph->stateful("counter")[1]->backend()->SizeBytes(),
            origin_bytes_before);
  // Coordinator routing table reflects the new epoch.
  for (uint32_t v : vnodes) {
    EXPECT_EQ(engine_.routing("counter")->InstanceForVnode(v), 1u);
  }
  EXPECT_TRUE(graph->stateful("counter")[0]->owned_vnodes().empty());
}

TEST_F(DataflowTest, HandoverPreservesExactlyOnceCounts) {
  // Golden run: no handover.
  std::map<uint64_t, uint64_t> golden;
  {
    runtime::SimExecutor sim;
    sim::Cluster cluster(&sim, 4);
    broker::Broker broker({kBrokerNode});
    broker.CreateTopic("events", kPartitions);
    lsm::MemEnv env;
    Engine engine(&sim, &cluster, &broker, SmallEngineOptions());
    QueryDef def;
    def.AddSource("src", "events", kPartitions)
        .AddStateful("counter", 2, {"src"},
                     [&](Engine* eng, int subtask, int node) {
                       auto backend = state::LsmStateBackend::Open(
                           &env, "/state/c" + std::to_string(subtask), "counter",
                           static_cast<uint32_t>(subtask));
                       RHINO_CHECK(backend.ok());
                       return std::make_unique<KeyedCounterOperator>(
                           eng, "counter", subtask, node, ProcessingProfile(),
                           std::move(backend).MoveValue());
                     })
        .AddSink("sink", 1, {"counter"});
    auto graph = ExecutionGraph::Build(&engine, def, {1, 2, 3});
    graph->sinks("sink")[0]->SetCollector([&](const Record& r) {
      uint64_t c = std::stoull(r.payload);
      if (c > golden[r.key]) golden[r.key] = c;
    });
    graph->StartSources();
    for (int wave = 0; wave < 4; ++wave) {
      for (uint64_t key = 0; key < 20; ++key) {
        Batch b;
        b.create_time = sim.Now();
        b.count = 1;
        b.bytes = 1;
        b.records.push_back(Record{key, sim.Now(), 1, "x"});
        broker.topic("events")
            .partition(static_cast<int>(key) % kPartitions)
            .Append(std::move(b));
      }
      sim.RunUntil(sim.Now() + kSecond);
    }
    sim.Run();
  }

  // Handover run: same input schedule, reconfiguration between waves.
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});
  InlineDelegate delegate(&sim_, 20 * kMillisecond);
  engine_.SetHandoverDelegate(&delegate);
  std::map<uint64_t, uint64_t> observed;
  graph->sinks("sink")[0]->SetCollector([&](const Record& r) {
    uint64_t c = std::stoull(r.payload);
    if (c > observed[r.key]) observed[r.key] = c;
  });
  graph->StartSources();

  for (int wave = 0; wave < 4; ++wave) {
    for (uint64_t key = 0; key < 20; ++key) {
      Produce("events", static_cast<int>(key) % kPartitions, key, "x");
    }
    if (wave == 1) {
      auto spec = std::make_shared<HandoverSpec>();
      spec->id = 1;
      spec->operator_name = "counter";
      spec->moves = {
          HandoverMove{0, 1, engine_.routing("counter")->VnodesOfInstance(0)}};
      engine_.StartHandover(spec);
    }
    sim_.RunUntil(sim_.Now() + kSecond);
  }
  sim_.Run();

  // No record lost, none double-counted: the final per-key counts match
  // the golden run exactly (Theorem 1).
  EXPECT_EQ(observed, golden);
}

TEST_F(DataflowTest, HandoverToFreshInstanceBuffersUntilStateArrives) {
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 2, {"src"}, CounterFactory())
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine_, def, {1, 2, 3});
  // Long transfer: records for moved vnodes must queue at the target.
  InlineDelegate delegate(&sim_, 2 * kSecond);
  engine_.SetHandoverDelegate(&delegate);
  std::map<uint64_t, uint64_t> observed;
  graph->sinks("sink")[0]->SetCollector([&](const Record& r) {
    uint64_t c = std::stoull(r.payload);
    if (c > observed[r.key]) observed[r.key] = c;
  });
  graph->StartSources();

  for (uint64_t key = 0; key < 10; ++key) Produce("events", 0, key, "x");
  sim_.Run();

  auto spec = std::make_shared<HandoverSpec>();
  spec->id = 1;
  spec->operator_name = "counter";
  spec->moves = {
      HandoverMove{0, 1, engine_.routing("counter")->VnodesOfInstance(0)}};
  engine_.StartHandover(spec);

  // Records arriving during the transfer are buffered, not lost.
  for (uint64_t key = 0; key < 10; ++key) Produce("events", 0, key, "x");
  sim_.Run();

  ASSERT_TRUE(engine_.handovers()[0].completed);
  for (uint64_t key = 0; key < 10; ++key) {
    EXPECT_EQ(observed[key], 2u) << "key " << key;
  }
}

}  // namespace
}  // namespace rhino::dataflow
