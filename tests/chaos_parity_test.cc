// Chaos parity suite: the same seeded fault schedule — fail-stop crashes
// plus transient network partitions, link delays, and slow disks — driven
// against the full protocol stack on BOTH executors:
//
//  * `SimExecutor`      — virtual time, fully deterministic in the seed;
//  * `RealtimeExecutor` — real threads, wall-clock timers. The *schedule*
//    is still seed-reproducible; thread interleavings vary run to run,
//    which is exactly what the TSan chaos lane wants to shake out.
//
// After the dust settles, both modes must satisfy the same invariants:
// exactly-once keyed output, every handover completed, routing converged
// onto live instances, and nothing advertised on dead nodes. Transient
// faults must be absorbed by the retry/backoff machinery (dropped state
// transfers are resent; nothing is permanently lost), so the assertions
// do not distinguish "clean" from "chaotic" runs.
//
// Every failure message carries the one-line `FaultInjector::Recipe()`
// (seed + full schedule) so a failing seed can be replayed verbatim.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "obs/exporters.h"
#include "obs/observability.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/realtime_executor.h"
#include "runtime/sim_executor.h"
#include "sim/fault_injector.h"
#include "state/lsm_state_backend.h"

namespace rhino::rhino {
namespace {

using dataflow::Batch;
using dataflow::Engine;
using dataflow::EngineOptions;
using dataflow::ExecutionGraph;
using dataflow::ProcessingProfile;
using dataflow::QueryDef;
using dataflow::Record;

enum class Mode { kSim, kRealtime };

std::string ModeName(Mode mode) {
  return mode == Mode::kSim ? "Sim" : "Realtime";
}

constexpr int kPartitions = 4;
constexpr int kParallelism = 4;
constexpr uint64_t kKeys = 24;
constexpr int kWaves = 9;
constexpr int kNodeThreads = 4;

/// Per-mode pacing. Simulation advances virtual time between waves;
/// realtime sleeps wall-clock, so its schedule is compressed to keep the
/// test fast while still landing faults inside the active window.
struct Timing {
  SimTime wave_gap;
  SimTime crash_lo, crash_hi;
  /// Minimum spacing between two crashes. Must comfortably exceed
  /// recovery_delay + catch-up re-replication: r=2 only tolerates losing
  /// both copies of a group if re-replication finishes in between, so a
  /// second crash inside that window is outside the declared fault model
  /// (it would legitimately lose state, not expose a bug).
  SimTime crash_min_gap;
  SimTime recovery_delay;
  SimTime transient_lo, transient_hi;
  SimTime transient_min_dur, transient_max_dur;
};

Timing TimingFor(Mode mode) {
  if (mode == Mode::kSim) {
    return {/*wave_gap=*/kSecond,
            /*crash_lo=*/2 * kSecond, /*crash_hi=*/7 * kSecond,
            /*crash_min_gap=*/1500 * kMillisecond,
            /*recovery_delay=*/300 * kMillisecond,
            /*transient_lo=*/1500 * kMillisecond,
            /*transient_hi=*/6 * kSecond,
            /*transient_min_dur=*/500 * kMillisecond,
            /*transient_max_dur=*/1500 * kMillisecond};
  }
  // crash_min_gap is ~7x the recovery delay: recovery plus catch-up is
  // timer-dominated (~100ms of compressed latencies), and TSan's CPU
  // slowdown must not push it past the gap.
  return {/*wave_gap=*/30 * kMillisecond,
          /*crash_lo=*/60 * kMillisecond, /*crash_hi=*/220 * kMillisecond,
          /*crash_min_gap=*/300 * kMillisecond,
          /*recovery_delay=*/40 * kMillisecond,
          /*transient_lo=*/40 * kMillisecond,
          /*transient_hi=*/200 * kMillisecond,
          /*transient_min_dur=*/40 * kMillisecond,
          /*transient_max_dur=*/120 * kMillisecond};
}

/// Handover and retry knobs compressed to the realtime schedule: the
/// defaults model paper-scale latencies (seconds), which would make a
/// wall-clock chaos run take minutes.
HandoverOptions HandoverOptionsFor(Mode mode) {
  HandoverOptions opts;
  if (mode == Mode::kRealtime) {
    opts.local_fetch_us = 5 * kMillisecond;
    opts.load_fixed_us = 10 * kMillisecond;
    opts.load_per_file_us = 100;
    opts.recovery_scheduling_us = 30 * kMillisecond;
    opts.retry.initial_backoff_us = 10 * kMillisecond;
    opts.retry.max_backoff_us = 100 * kMillisecond;
    opts.retry.deadline_us = 20 * kSecond;
  }
  return opts;
}

ReplicationOptions ReplicationOptionsFor(Mode mode) {
  ReplicationOptions opts;
  if (mode == Mode::kRealtime) {
    opts.retry.initial_backoff_us = 10 * kMillisecond;
    opts.retry.max_backoff_us = 100 * kMillisecond;
    opts.retry.deadline_us = 20 * kSecond;
  }
  return opts;
}

/// Pipeline over a 7-node cluster (0 = broker, 1-6 = workers; 4 stateful
/// instances plus spare capacity to absorb failures) on either executor.
struct ParityStack {
  Mode mode;
  Timing timing;
  std::unique_ptr<runtime::SimExecutor> sim;
  std::unique_ptr<runtime::RealtimeExecutor> rt;
  runtime::Executor* exec = nullptr;

  obs::Observability obs;
  std::unique_ptr<sim::Cluster> cluster;
  broker::Broker broker{{0}};
  lsm::MemEnv env;
  std::unique_ptr<Engine> engine;
  ReplicationManager rm{{1, 2, 3, 4, 5, 6}, /*r=*/2};
  std::unique_ptr<ReplicationRuntime> runtime;
  std::unique_ptr<RhinoCheckpointStorage> storage;
  std::unique_ptr<HandoverManager> hm;
  std::unique_ptr<sim::FaultInjector> injector;
  std::unique_ptr<ExecutionGraph> graph;

  std::mutex counts_mu;
  std::map<uint64_t, uint64_t> counts;

  ParityStack(Mode m, uint64_t seed) : mode(m), timing(TimingFor(m)) {
    if (mode == Mode::kSim) {
      sim = std::make_unique<runtime::SimExecutor>();
      exec = sim.get();
    } else {
      rt = std::make_unique<runtime::RealtimeExecutor>(kNodeThreads);
      exec = rt.get();
    }
    cluster = std::make_unique<sim::Cluster>(exec, 7);
    engine = std::make_unique<Engine>(exec, cluster.get(), &broker, Opts());
    runtime = std::make_unique<ReplicationRuntime>(cluster.get(), &rm,
                                                   ReplicationOptionsFor(mode));
    storage = std::make_unique<RhinoCheckpointStorage>(cluster.get(),
                                                       runtime.get());
    hm = std::make_unique<HandoverManager>(engine.get(), &rm, runtime.get(),
                                           HandoverOptionsFor(mode));
    injector = std::make_unique<sim::FaultInjector>(exec, cluster.get(), seed);

    obs.SetClock([this] { return exec->Now(); });
    obs.trace().set_data_events(true);  // richer forensics in trace dumps
    engine->SetObservability(&obs);
    runtime->SetObservability(&obs);
    rm.SetObservability(&obs);
    injector->SetObservability(&obs);
    broker.CreateTopic("events", kPartitions);
    engine->SetCheckpointStorage(storage.get());
    engine->SetFaultProbe([this](const std::string& e) { injector->Notify(e); });
    runtime->SetFaultProbe(
        [this](const std::string& e) { injector->Notify(e); });
    injector->SetCrashHandler([this](int node) {
      engine->FailNode(node);
      exec->Schedule(timing.recovery_delay,
                     [this, node] { hm->RecoverFailedNode(node); });
    });
    injector->InstallNetworkFaults();

    QueryDef def;
    def.AddSource("src", "events", kPartitions)
        .AddStateful("counter", kParallelism, {"src"},
                     [this](Engine* eng, int subtask, int node) {
                       auto backend = state::LsmStateBackend::Open(
                           &env, "/state/c" + std::to_string(subtask),
                           "counter", static_cast<uint32_t>(subtask));
                       RHINO_CHECK(backend.ok());
                       return std::make_unique<dataflow::KeyedCounterOperator>(
                           eng, "counter", subtask, node, ProcessingProfile(),
                           std::move(backend).MoveValue());
                     })
        .AddSink("sink", 1, {"counter"});
    graph = ExecutionGraph::Build(engine.get(), def, {1, 2, 3, 4, 5, 6});
    graph->sinks("sink")[0]->SetCollector([this](const Record& r) {
      std::lock_guard<std::mutex> lock(counts_mu);
      uint64_t c = std::stoull(r.payload);
      if (c > counts[r.key]) counts[r.key] = c;
    });
    std::vector<InstanceInfo> infos;
    for (auto* inst : graph->stateful("counter")) {
      infos.push_back({"counter", static_cast<uint32_t>(inst->subtask()),
                       inst->node_id(), 1});
    }
    rm.BuildGroups(infos);
    graph->StartSources();
  }

  ~ParityStack() {
    // The injector is the cluster's installed FaultPolicy; make sure no
    // late transfer consults it after destruction.
    Quiesce();
    cluster->SetFaultPolicy(nullptr);
    Quiesce();
  }

  static EngineOptions Opts() {
    EngineOptions opts;
    opts.num_key_groups = 64;
    opts.vnodes_per_instance = 2;
    return opts;
  }

  void ProduceWave() {
    for (uint64_t key = 0; key < kKeys; ++key) {
      Batch batch;
      batch.create_time = exec->Now();
      batch.count = 1;
      batch.bytes = 8;
      batch.records.push_back(Record{key, exec->Now(), 8, "x"});
      broker.topic("events")
          .partition(static_cast<int>(key) % kPartitions)
          .Append(std::move(batch));
    }
  }

  /// Lets `us` of schedule elapse: virtual time in sim mode, wall clock in
  /// realtime mode (the strands keep running underneath the sleep).
  void Advance(SimTime us) {
    if (mode == Mode::kSim) {
      sim->RunUntil(sim->Now() + us);
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }

  /// Runs the schedule to completion (including pending fault timers and
  /// every retry they trigger).
  void Quiesce() {
    if (mode == Mode::kSim) {
      sim->Run();
    } else {
      rt->Drain();
    }
  }

  uint64_t CountOf(uint64_t key) {
    std::lock_guard<std::mutex> lock(counts_mu);
    return counts[key];
  }
};

void RunChaosSchedule(ParityStack& stack) {
  const Timing& t = stack.timing;
  // 1-2 crashes plus 2 transient faults, all drawn from the seed.
  int crash_count = 1 + static_cast<int>(stack.injector->seed() % 2);
  auto crashes = stack.injector->ScheduleRandomCrashes(
      crash_count, {1, 2, 3, 4, 5, 6}, t.crash_lo, t.crash_hi,
      t.crash_min_gap);
  ASSERT_EQ(crashes.size(), static_cast<size_t>(crash_count));
  auto transients = stack.injector->ScheduleRandomTransients(
      2, {1, 2, 3, 4, 5, 6}, t.transient_lo, t.transient_hi,
      t.transient_min_dur, t.transient_max_dur);
  ASSERT_EQ(transients.size(), 2u);

  for (int wave = 0; wave < kWaves; ++wave) {
    stack.ProduceWave();
    // Same guard as the periodic-checkpoint path: under wall-clock pacing
    // (and TSan slowdown) the previous checkpoint can still be in flight
    // when the next trigger wave comes around; skip it, don't crash.
    if (wave % 3 == 2 && !stack.engine->checkpoint_in_flight()) {
      stack.engine->TriggerCheckpoint();
    }
    stack.Advance(t.wave_gap);
  }
  stack.Quiesce();
  // One more wave after convergence: proves routing and liveness settled.
  stack.ProduceWave();
  stack.Quiesce();
}

void AssertConverged(ParityStack& stack) {
  // Every planned crash fired.
  auto fired = stack.injector->CrashLog();
  EXPECT_GE(fired.size(), 1u);

  // Exactly-once: each of the kWaves+1 waves incremented every key once —
  // despite crashes, dropped state transfers, and slowed disks.
  for (uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_EQ(stack.CountOf(key), static_cast<uint64_t>(kWaves) + 1)
        << "key " << key;
  }
  // Every handover (including recovery handovers) converged.
  for (const auto& record : stack.engine->SnapshotHandovers()) {
    EXPECT_TRUE(record.completed) << "handover " << record.spec->id;
  }
  // Routing converged onto live instances only.
  auto* table = stack.engine->routing("counter");
  for (uint32_t v = 0; v < table->map().num_vnodes(); ++v) {
    uint32_t inst = table->InstanceForVnode(v);
    EXPECT_FALSE(stack.graph->stateful("counter")[inst]->halted())
        << "vnode " << v;
  }
  // The catalog advertises nothing on dead nodes.
  for (const auto& crash : fired) {
    for (uint32_t sub = 0; sub < kParallelism; ++sub) {
      EXPECT_EQ(stack.runtime->ReplicaOn("counter", sub, crash.node), nullptr);
    }
  }
}

/// CI forensics: when a chaos run fails and RHINO_TRACE_DUMP names a
/// directory, write the Chrome trace and the one-line repro recipe there
/// (the nightly lane uploads that directory as a build artifact).
void DumpOnFailure(ParityStack& stack, const std::string& label) {
  if (!::testing::Test::HasFailure()) return;
  const char* dir = std::getenv("RHINO_TRACE_DUMP");
  if (dir == nullptr || *dir == '\0') return;
  std::string base = std::string(dir) + "/chaos_" + label;
  (void)obs::WriteTextFile(base + "_trace.json",
                           obs::TraceToChromeJson(stack.obs.trace()));
  (void)obs::WriteTextFile(base + "_repro.txt",
                           stack.injector->Recipe() + "\n");
}

class ChaosParityTest
    : public ::testing::TestWithParam<std::tuple<Mode, uint64_t>> {};

TEST_P(ChaosParityTest, SeededScheduleIsExactlyOnceOnBothExecutors) {
  auto [mode, seed] = GetParam();
  ParityStack stack(mode, seed);
  // Any failure below names the seed and the full fault schedule: paste
  // the seed back into the fixture (or the --gtest_filter for this
  // instantiation) to replay it.
  SCOPED_TRACE("chaos repro: mode=" + ModeName(mode) + " " +
               stack.injector->Recipe());
  RunChaosSchedule(stack);
  if (!::testing::Test::HasFatalFailure()) {
    SCOPED_TRACE("schedule as fired: " + stack.injector->Recipe());
    AssertConverged(stack);
  }
  DumpOnFailure(stack, ModeName(mode) + "_seed" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ChaosParityTest,
    ::testing::Combine(::testing::Values(Mode::kSim, Mode::kRealtime),
                       ::testing::Range<uint64_t>(1, 5)),
    [](const ::testing::TestParamInfo<std::tuple<Mode, uint64_t>>& info) {
      return ModeName(std::get<0>(info.param)) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

/// Nightly seed-matrix hook: the chaos CI lane re-runs this binary with
/// RHINO_CHAOS_SEED=<n> to sweep seeds far beyond the per-commit set.
/// Skipped when the variable is unset.
TEST(ChaosParityNightly, EnvSeedSweep) {
  const char* env_seed = std::getenv("RHINO_CHAOS_SEED");
  if (env_seed == nullptr) {
    GTEST_SKIP() << "RHINO_CHAOS_SEED not set (nightly-only sweep)";
  }
  uint64_t seed = std::strtoull(env_seed, nullptr, 10);
  for (Mode mode : {Mode::kSim, Mode::kRealtime}) {
    ParityStack stack(mode, seed);
    SCOPED_TRACE("chaos repro: mode=" + ModeName(mode) + " " +
                 stack.injector->Recipe());
    RunChaosSchedule(stack);
    if (!::testing::Test::HasFatalFailure()) AssertConverged(stack);
    DumpOnFailure(stack,
                  ModeName(mode) + "_envseed" + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace rhino::rhino
