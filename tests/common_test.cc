#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/units.h"

namespace rhino {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::IOError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfMemory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  RHINO_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

TEST(UnitsTest, TransferTimeMatchesBandwidth) {
  // 1 GiB at 1 GB/s should take ~1.074 s.
  SimTime t = TransferTime(kGiB, 1e9);
  EXPECT_NEAR(ToSeconds(t), 1.0737, 0.001);
}

TEST(UnitsTest, TransferTimeOfZeroBytesIsZero) {
  EXPECT_EQ(TransferTime(0, 1e9), 0);
}

TEST(UnitsTest, TransferTimeRoundsUpToOneMicrosecond) {
  EXPECT_GE(TransferTime(1, 1e12), 1);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(kGiB + kGiB / 2), "1.50 GiB");
  EXPECT_EQ(FormatBytes(2 * kTiB), "2.00 TiB");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(90 * kSecond), "1.50 min");
  EXPECT_EQ(FormatDuration(250 * kMillisecond), "250.00 ms");
}

TEST(SerdeTest, RoundTripFixedWidth) {
  std::string buf;
  BinaryWriter w(&buf);
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-42);

  BinaryReader r(buf);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, VarintBoundaries) {
  std::string buf;
  BinaryWriter w(&buf);
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  ~0ull, 1ull << 63};
  for (uint64_t v : values) w.PutVarint(v);
  BinaryReader r(buf);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(r.GetVarint(&v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(SerdeTest, StringsWithEmbeddedNuls) {
  std::string buf;
  BinaryWriter w(&buf);
  std::string s1("a\0b", 3);
  w.PutString(s1);
  w.PutString("");
  BinaryReader r(buf);
  std::string out;
  ASSERT_TRUE(r.GetString(&out).ok());
  EXPECT_EQ(out, s1);
  ASSERT_TRUE(r.GetString(&out).ok());
  EXPECT_EQ(out, "");
}

TEST(SerdeTest, TruncationDetected) {
  std::string buf;
  BinaryWriter w(&buf);
  w.PutU64(7);
  BinaryReader r(std::string_view(buf).substr(0, 5));
  uint64_t v;
  EXPECT_EQ(r.GetU64(&v).code(), StatusCode::kCorruption);
}

TEST(SerdeTest, TruncatedStringDetected) {
  std::string buf;
  BinaryWriter w(&buf);
  w.PutVarint(100);  // claims a 100-byte string follows
  buf += "short";
  BinaryReader r(buf);
  std::string out;
  EXPECT_EQ(r.GetString(&out).code(), StatusCode::kCorruption);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int diffs = 0;
  for (int i = 0; i < 32; ++i) diffs += a.Next() != b.Next();
  EXPECT_GT(diffs, 28);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, UniformIsRoughlyUniform) {
  Random rng(11);
  int counts[10] = {};
  for (int i = 0; i < 100000; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0);
  EXPECT_EQ(h.Min(), 0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
  EXPECT_EQ(h.Percentile(50), 50);
  EXPECT_EQ(h.Percentile(99), 99);
  EXPECT_EQ(h.Percentile(100), 100);
}

TEST(HistogramTest, AddAfterPercentileQuery) {
  Histogram h;
  h.Add(5);
  EXPECT_EQ(h.Percentile(99), 5);
  h.Add(10);
  EXPECT_EQ(h.Percentile(99), 10);  // re-sorts lazily
}

}  // namespace
}  // namespace rhino
