// Reproduces **Figure 4g-i**: latency around a load-balancing operation
// that moves half the virtual nodes of the first instance on each worker
// to another instance (paper §5.4.2: ~27 GB of state on NBQ8).
//
// Paper shape: Rhino's latency rises by ~60 ms and recovers within a
// minute; Megaphone's fluid migration drives latency to ~10-24 s while
// the (large) state moves; Flink has no load balancing — its stand-in is
// the restart-based rescale of Figure 4d-f.

#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "harness.h"
#include "timeline_util.h"

namespace rhino::bench {
namespace {

uint64_t SeedFor(const std::string& query) {
  if (SmokeMode()) return 8 * kGiB;
  if (query == "NBQ5") return 26 * kMiB;
  if (query == "NBQ8") return 190 * kGiB;
  return 180 * kGiB;
}

void RunScenario(const std::string& query, Sut sut,
                 BenchArtifact* artifact) {
  TestbedOptions opts;
  opts.sut = sut;
  opts.query = query;
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  if (query == "NBQ5") {
    // Paper §5.1.4: 128 MB/s per producer of 32 B bids — millions of
    // records/s; give the modeled instances matching headroom.
    opts.gen_bytes_per_sec = 128e6;
    opts.stateful_records_per_sec = 12e6;
    opts.source_records_per_sec = 16e6;
  }
  Testbed tb(opts);
  tb.SeedState(SeedFor(query));
  tb.Start();
  SimTime lead_in = sut == Sut::kMegaphone
                        ? 2 * opts.checkpoint_interval + 10 * kSecond
                        : 2 * opts.checkpoint_interval + 10 * kSecond;
  tb.Run(lead_in);

  SimTime rebalance_time = tb.sim.Now();
  tb.TriggerLoadBalance(opts.num_workers, 0.5);
  tb.Run(3 * opts.checkpoint_interval);

  std::printf("--- %s / %s: load balancing at t=%.0f s ---\n", query.c_str(),
              SutName(sut), ToSeconds(rebalance_time));
  PrintTimeline(tb, PrimaryOpOf(query), rebalance_time);

  std::string prefix = query + "." + std::string(SutName(sut));
  TimelineSummary summary =
      SummarizeTimeline(tb, PrimaryOpOf(query), rebalance_time);
  artifact->Set("steady_mean_ms." + prefix,
                summary.steady_mean_us / kMillisecond);
  artifact->Set("peak_after_ms." + prefix,
                summary.peak_after_us / kMillisecond);
}

}  // namespace
}  // namespace rhino::bench

int main() {
  rhino::bench::BenchArtifact artifact("fig4_load_balancing");
  std::vector<const char*> queries = {"NBQ8", "NBQ5", "NBQX"};
  std::vector<rhino::bench::Sut> suts = {rhino::bench::Sut::kRhino,
                                         rhino::bench::Sut::kMegaphone,
                                         rhino::bench::Sut::kFlink};
  if (rhino::bench::SmokeMode()) {
    queries = {"NBQ8"};
    suts = {rhino::bench::Sut::kRhino};
  }
  std::printf("=== Figure 4g-i: latency around load balancing ===\n\n");
  for (const char* query : queries) {
    for (auto sut : suts) {
      rhino::bench::RunScenario(query, sut, &artifact);
    }
  }
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
