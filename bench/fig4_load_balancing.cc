// Reproduces **Figure 4g-i**: latency around a load-balancing operation
// that moves half the virtual nodes of the first instance on each worker
// to another instance (paper §5.4.2: ~27 GB of state on NBQ8).
//
// Paper shape: Rhino's latency rises by ~60 ms and recovers within a
// minute; Megaphone's fluid migration drives latency to ~10-24 s while
// the (large) state moves; Flink has no load balancing — its stand-in is
// the restart-based rescale of Figure 4d-f.

#include <cstdio>

#include "harness.h"
#include "timeline_util.h"

namespace rhino::bench {
namespace {

uint64_t SeedFor(const std::string& query) {
  if (query == "NBQ5") return 26 * kMiB;
  if (query == "NBQ8") return 190 * kGiB;
  return 180 * kGiB;
}

void RunScenario(const std::string& query, Sut sut) {
  TestbedOptions opts;
  opts.sut = sut;
  opts.query = query;
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  if (query == "NBQ5") {
    // Paper §5.1.4: 128 MB/s per producer of 32 B bids — millions of
    // records/s; give the modeled instances matching headroom.
    opts.gen_bytes_per_sec = 128e6;
    opts.stateful_records_per_sec = 12e6;
    opts.source_records_per_sec = 16e6;
  }
  Testbed tb(opts);
  tb.SeedState(SeedFor(query));
  tb.Start();
  SimTime lead_in = sut == Sut::kMegaphone
                        ? 2 * opts.checkpoint_interval + 10 * kSecond
                        : 2 * opts.checkpoint_interval + 10 * kSecond;
  tb.Run(lead_in);

  SimTime rebalance_time = tb.sim.Now();
  tb.TriggerLoadBalance(opts.num_workers, 0.5);
  tb.Run(3 * opts.checkpoint_interval);

  std::printf("--- %s / %s: load balancing at t=%.0f s ---\n", query.c_str(),
              SutName(sut), ToSeconds(rebalance_time));
  PrintTimeline(tb, PrimaryOpOf(query), rebalance_time);
}

}  // namespace
}  // namespace rhino::bench

int main() {
  std::printf("=== Figure 4g-i: latency around load balancing ===\n\n");
  for (const char* query : {"NBQ8", "NBQ5", "NBQX"}) {
    for (auto sut : {rhino::bench::Sut::kRhino, rhino::bench::Sut::kMegaphone,
                     rhino::bench::Sut::kFlink}) {
      rhino::bench::RunScenario(query, sut);
    }
  }
  return 0;
}
