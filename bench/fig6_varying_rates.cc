// Reproduces **Figure 6**: NBQ8 latency under a data rate oscillating
// between 1 MB/s and 8 MB/s per producer (triangle wave, ±0.5 MB/s every
// 10 s), with a planned migration of all operators off one server once
// state reaches ~150 GB.
//
// Paper shape: all systems ride the varying rate at ~200 ms average;
// at the reconfiguration Flink spikes to ~225 s while Rhino and RhinoDFS
// stay flat.

#include <cmath>
#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "harness.h"
#include "timeline_util.h"

namespace rhino::bench {
namespace {

using dataflow::HandoverMove;
using dataflow::StatefulInstance;

/// Paper §5.5 rate schedule: starts at 1 MB/s, +0.5 MB/s every 10 s up to
/// 8 MB/s, then back down, repeating. Expressed as a factor of the 8 MB/s
/// peak rate.
double TriangleFactor(SimTime t) {
  const double lo = 1.0, hi = 8.0;
  double steps_per_cycle = 2 * (hi - lo) / 0.5;
  double step = static_cast<double>(t / (10 * kSecond));
  double phase = std::fmod(step, steps_per_cycle);
  double up = (hi - lo) / 0.5;
  double mbps = phase <= up ? lo + 0.5 * phase : hi - 0.5 * (phase - up);
  return mbps / hi;
}

void RunSut(Sut sut, BenchArtifact* artifact) {
  TestbedOptions opts;
  opts.sut = sut;
  opts.query = "NBQ8";
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  opts.gen_bytes_per_sec = 8e6;  // peak
  opts.rate_factor = TriangleFactor;
  Testbed tb(opts);
  tb.SeedState(SmokeScaled<uint64_t>(150 * kGiB, 8 * kGiB));
  tb.Start();
  tb.Run(2 * opts.checkpoint_interval + 10 * kSecond);

  // Migrate every stateful instance on worker 0 to the remaining workers.
  SimTime reconfig = tb.sim.Now();
  if (sut == Sut::kFlink) {
    for (const auto& op : tb.stateful_ops) {
      auto* table = tb.engine.routing(op);
      uint32_t target = 1;
      for (StatefulInstance* inst : tb.engine.stateful()) {
        if (inst->op_name() != op || inst->node_id() != 0) continue;
        for (uint32_t v : table->VnodesOfInstance(
                 static_cast<uint32_t>(inst->subtask()))) {
          // Next instance not on worker 0 (simple round robin).
          while (tb.engine.FindStateful(op, target)->node_id() == 0) {
            target = (target + 1) % static_cast<uint32_t>(
                                        opts.stateful_parallelism);
          }
          table->Assign(v, target);
          target = (target + 1) % static_cast<uint32_t>(
                                      opts.stateful_parallelism);
        }
        inst->InitOwnedVnodes({});
      }
      tb.engine.ReinitKeyedGates(op);
      for (StatefulInstance* inst : tb.engine.stateful()) {
        if (inst->op_name() == op) {
          inst->InitOwnedVnodes(table->VnodesOfInstance(
              static_cast<uint32_t>(inst->subtask())));
        }
      }
    }
    tb.flink->RestartFromLastCheckpoint(-1, [](baselines::RestartBreakdown) {});
  } else {
    for (const auto& op : tb.stateful_ops) {
      auto* table = tb.engine.routing(op);
      std::vector<dataflow::HandoverMove> moves;
      uint32_t target = 1;
      for (StatefulInstance* inst : tb.engine.stateful()) {
        if (inst->op_name() != op || inst->node_id() != 0) continue;
        auto vnodes =
            table->VnodesOfInstance(static_cast<uint32_t>(inst->subtask()));
        if (vnodes.empty()) continue;
        while (tb.engine.FindStateful(op, target)->node_id() == 0) {
          target =
              (target + 1) % static_cast<uint32_t>(opts.stateful_parallelism);
        }
        moves.push_back(HandoverMove{static_cast<uint32_t>(inst->subtask()),
                                     target, vnodes});
        target =
            (target + 1) % static_cast<uint32_t>(opts.stateful_parallelism);
      }
      tb.hm->TriggerReconfiguration(op, std::move(moves));
    }
  }
  tb.Run(3 * opts.checkpoint_interval);

  std::printf("--- %s: migrate worker 0 off at t=%.0f s (state %s) ---\n",
              SutName(sut), ToSeconds(reconfig),
              FormatBytes(tb.TotalStateBytes()).c_str());
  PrintTimeline(tb, PrimaryOpOf("NBQ8"), reconfig);

  std::string prefix = SutName(sut);
  TimelineSummary summary =
      SummarizeTimeline(tb, PrimaryOpOf("NBQ8"), reconfig);
  artifact->Set("steady_mean_ms." + prefix,
                summary.steady_mean_us / kMillisecond);
  artifact->Set("peak_after_ms." + prefix,
                summary.peak_after_us / kMillisecond);
}

}  // namespace
}  // namespace rhino::bench

int main() {
  rhino::bench::BenchArtifact artifact("fig6_varying_rates");
  std::vector<rhino::bench::Sut> suts = {rhino::bench::Sut::kFlink,
                                         rhino::bench::Sut::kRhino,
                                         rhino::bench::Sut::kRhinoDfs};
  if (rhino::bench::SmokeMode()) suts = {rhino::bench::Sut::kRhino};
  std::printf(
      "=== Figure 6: NBQ8 latency under varying data rates, with a planned "
      "migration ===\n\n");
  for (auto sut : suts) {
    rhino::bench::RunSut(sut, &artifact);
  }
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
