#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/flink_restart.h"
#include "baselines/megaphone.h"
#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dfs/dfs.h"
#include "metrics/resource_monitor.h"
#include "metrics/timeline.h"
#include "nexmark/nexmark.h"
#include "obs/observability.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/sim_executor.h"
#include "sim/cluster.h"

/// \file harness.h
/// Shared experiment testbed for every bench binary: the paper's cluster
/// (8 worker VMs + 4 broker VMs of `n1-standard-16` spec, §5.1.1), NEXMark
/// generators, one system-under-test, and scenario drivers (failure,
/// rescaling, load balancing) with state seeding so TB-scale experiments
/// start from the paper's preconditions.

namespace rhino::bench {

/// Systems under test (paper §5).
enum class Sut { kFlink, kRhino, kRhinoDfs, kMegaphone };

const char* SutName(Sut sut);

struct TestbedOptions {
  Sut sut = Sut::kRhino;
  std::string query = "NBQ8";  // NBQ5 | NBQ8 | NBQX
  int num_workers = 8;
  int num_broker_nodes = 4;
  /// Scaled-down parallelism keeps simulated event counts tractable while
  /// preserving per-worker ratios; pass the paper's values to match §5.1.3
  /// exactly.
  int source_parallelism = 16;
  int stateful_parallelism = 32;
  uint32_t num_key_groups = 1 << 15;
  uint32_t vnodes_per_instance = 4;
  int replication_factor = 1;  // Rhino: local primary + 1 remote secondary
  /// Per-partition generator rate (paper NBQ8: 8 MB/s per producer).
  double gen_bytes_per_sec = 8e6;
  /// Modeled per-instance service rates. NBQ5's 128 MB/s of 32 B bids
  /// needs millions of records/s per instance (the paper's SUTs sustain
  /// ~135 M records/s across 64 instances).
  double stateful_records_per_sec = 4e6;
  double source_records_per_sec = 8e6;
  SimTime gen_tick = 500 * kMillisecond;
  std::function<double(SimTime)> rate_factor;
  SimTime checkpoint_interval = 2 * kMinute;
  /// Instances (per stateful op) deployed but initially owning no vnodes;
  /// the vertical-scaling scenario hands vnodes to them (paper §5.4.1:
  /// DOP 56 -> 64 means 1/8 of the instances start idle).
  int spare_instances = 0;
  rhino::ReplicationOptions replication;
  baselines::MegaphoneOptions megaphone;
};

/// A fully wired experiment.
class Testbed {
 public:
  explicit Testbed(TestbedOptions options);
  /// When RHINO_TRACE_DUMP names a directory, teardown writes the protocol
  /// trace there as Chrome trace_event JSON (chrome://tracing / Perfetto)
  /// plus the metrics as Prometheus text.
  ~Testbed();

  /// Starts generators, sources, and periodic checkpoints.
  void Start();
  void StopGenerators();

  /// Injects `total_bytes` of pre-existing operator state, spread evenly
  /// over the query's stateful instances and their vnodes, and registers
  /// it as checkpointed + replicated/persisted (per SUT) — the paper's
  /// "run until the desired state size" precondition.
  void SeedState(uint64_t total_bytes);

  uint64_t TotalStateBytes() const;

  /// Runs the simulation for `duration` of simulated time.
  void Run(SimTime duration) { sim.RunUntil(sim.Now() + duration); }

  /// Fail-stop one worker (by worker index, 0-based).
  void FailWorker(int worker_index);

  /// SUT-dispatching recovery; returns when recovery has been *triggered*
  /// (completion is observed through `engine.handovers()` / `breakdown`).
  struct RecoveryBreakdown {
    bool supported = true;
    bool oom = false;
    SimTime scheduling_us = 0;
    SimTime state_fetch_us = 0;
    SimTime state_load_us = 0;
    SimTime total_us = 0;
  };
  /// Recovers from the failure of `worker_index` and runs the simulation
  /// until recovery completes; returns the time breakdown (Table 1).
  RecoveryBreakdown Recover(int worker_index);

  /// Vertical-scaling scenario (§5.4.1): moves vnodes from the active
  /// instances onto the spare ones. With Flink this is a full restart.
  void TriggerRescale(double fraction);

  /// Load-balancing scenario (§5.4.2): moves `fraction` of the vnodes of
  /// each of the first `origins` instances to the following instance.
  void TriggerLoadBalance(int origins, double fraction);

  /// Node ids of the workers (cluster nodes 0..num_workers-1).
  std::vector<int> worker_nodes() const;

  // ---- components (construction order matters) ----
  TestbedOptions options;
  /// Deterministic execution substrate (the member keeps its historical
  /// name: scenario drivers step it exactly as they stepped the raw
  /// kernel, and its call-order-to-event-order mapping is identical).
  runtime::SimExecutor sim;
  /// Per-testbed observability context (simulated-clock trace + metrics);
  /// installed on the engine and the out-of-engine components in the ctor
  /// so benches that build several testbeds in one process don't bleed
  /// counters into each other.
  obs::Observability observability;
  sim::Cluster cluster;
  broker::Broker broker;
  dataflow::Engine engine;
  dfs::DistributedFileSystem dfs;
  rhino::ReplicationManager rm;
  rhino::ReplicationRuntime replication;
  rhino::RhinoCheckpointStorage rhino_storage;
  rhino::DfsCheckpointStorage dfs_storage;
  std::unique_ptr<rhino::HandoverManager> hm;
  std::unique_ptr<baselines::FlinkRestartController> flink;
  std::unique_ptr<baselines::MegaphoneModel> megaphone;
  std::unique_ptr<dataflow::HandoverDelegate> megaphone_delegate;
  metrics::LatencyRecorder latency;
  std::unique_ptr<metrics::ResourceMonitor> monitor;
  std::unique_ptr<dataflow::ExecutionGraph> graph;
  std::vector<std::unique_ptr<nexmark::NexmarkGenerator>> generators;
  std::vector<std::string> stateful_ops;

 private:
  void BuildQuery();
  void WireSut();
  void BuildReplicaGroups();

  uint64_t next_adhoc_id_ = 1;
};

}  // namespace rhino::bench
