// Reproduces **Figure 5**: cluster resource utilization (CPU, memory,
// network, disk) of Flink vs Rhino vs Megaphone running NBQ8 with one
// reconfiguration in the middle.
//
// Paper shape: before the reconfiguration Flink and Rhino are nearly
// identical (same processing routines), with periodic peaks at every
// checkpoint/replication; during replication Rhino uses up to ~30% more
// network and ~5% more disk-write bandwidth, buying a ~3.5x faster state
// transfer; Megaphone shows flat CPU and growing memory (all state on the
// heap).

#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "harness.h"
#include "metrics/table.h"

namespace rhino::bench {
namespace {

void RunSut(Sut sut, BenchArtifact* artifact) {
  TestbedOptions opts;
  opts.sut = sut;
  opts.query = "NBQ8";
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  Testbed tb(opts);
  tb.SeedState(SmokeScaled<uint64_t>(64 * kGiB, 8 * kGiB));
  tb.Start();
  tb.Run(SmokeScaled(3 * kMinute, kMinute));
  SimTime reconfig = tb.sim.Now();
  if (sut == Sut::kFlink) {
    // Flink's only reconfiguration mechanism: restart from the checkpoint.
    tb.flink->RestartFromLastCheckpoint(-1, [](baselines::RestartBreakdown) {});
  } else {
    tb.TriggerLoadBalance(opts.num_workers, 0.5);
  }
  tb.Run(SmokeScaled(3 * kMinute, kMinute));
  tb.StopGenerators();

  double cpu_sum = 0, net_sum = 0, disk_sum = 0;
  uint64_t net_bytes = 0, disk_bytes = 0;
  for (const auto& s : tb.monitor->samples()) {
    cpu_sum += s.cpu_util;
    net_sum += s.net_util;
    disk_sum += s.disk_util;
    net_bytes += s.net_bytes;
    disk_bytes += s.disk_bytes;
  }
  auto count = static_cast<double>(tb.monitor->samples().size());
  std::string prefix = SutName(sut);
  if (count > 0) {
    artifact->Set("cpu_util_pct." + prefix, cpu_sum / count * 100);
    artifact->Set("net_util_pct." + prefix, net_sum / count * 100);
    artifact->Set("disk_util_pct." + prefix, disk_sum / count * 100);
  }
  artifact->Set("net_bytes." + prefix, static_cast<double>(net_bytes));
  artifact->Set("disk_bytes." + prefix, static_cast<double>(disk_bytes));

  std::printf("--- %s (reconfiguration at t=%.0f s) ---\n", SutName(sut),
              ToSeconds(reconfig));
  metrics::TablePrinter table(
      {"t[s]", "cpu[%]", "net[%]", "disk[%]", "net[MB/s]", "disk[MB/s]",
       "mem[GB]", ""});
  const auto& samples = tb.monitor->samples();
  // Print 10 s aggregates to keep the series readable.
  for (size_t i = 0; i + 9 < samples.size(); i += 10) {
    double cpu = 0, net = 0, disk = 0, net_b = 0, disk_b = 0;
    for (size_t j = i; j < i + 10; ++j) {
      cpu += samples[j].cpu_util;
      net += samples[j].net_util;
      disk += samples[j].disk_util;
      net_b += static_cast<double>(samples[j].net_bytes);
      disk_b += static_cast<double>(samples[j].disk_bytes);
    }
    char t[32], c[32], n[32], d[32], nb[32], db[32], mem[32];
    std::snprintf(t, sizeof(t), "%.0f", ToSeconds(samples[i].time));
    std::snprintf(c, sizeof(c), "%.1f", cpu * 10);
    std::snprintf(n, sizeof(n), "%.1f", net * 10);
    std::snprintf(d, sizeof(d), "%.1f", disk * 10);
    std::snprintf(nb, sizeof(nb), "%.0f", net_b / 10 / 1e6);
    std::snprintf(db, sizeof(db), "%.0f", disk_b / 10 / 1e6);
    std::snprintf(mem, sizeof(mem), "%.1f",
                  static_cast<double>(samples[i + 9].memory_bytes) / kGiB);
    bool at = samples[i].time <= reconfig && reconfig < samples[i].time + 10 * kSecond;
    table.AddRow({t, c, n, d, nb, db, mem, at ? "<- reconfiguration" : ""});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace rhino::bench

int main() {
  rhino::bench::BenchArtifact artifact("fig5_resource_utilization");
  std::vector<rhino::bench::Sut> suts = {rhino::bench::Sut::kFlink,
                                         rhino::bench::Sut::kRhino,
                                         rhino::bench::Sut::kMegaphone};
  if (rhino::bench::SmokeMode()) suts = {rhino::bench::Sut::kRhino};
  std::printf(
      "=== Figure 5: cluster resource utilization, NBQ8 with one "
      "reconfiguration ===\n\n");
  for (auto sut : suts) {
    rhino::bench::RunSut(sut, &artifact);
  }
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
