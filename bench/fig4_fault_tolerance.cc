// Reproduces **Figure 4a-c**: end-to-end processing latency around a VM
// failure for NBQ8 (~190 GB state), NBQ5 (~26 MB), and NBQX (~180 GB),
// comparing Flink, Rhino, and RhinoDFS.
//
// Paper shape: steady latency is comparable across systems; upon the
// failure Flink's latency climbs to hundreds of seconds (query restart +
// bulk state fetch + replay), RhinoDFS spikes for tens of seconds, and
// Rhino stays within normal bounds (sub-second).
//
// Scale note: the checkpoint interval is 60 s (the paper uses 2-3 min);
// Flink's spike scales with the interval because the replay starts from
// the last checkpoint. The ordering across systems is unaffected.

#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "harness.h"
#include "sim/fault_injector.h"
#include "timeline_util.h"

namespace rhino::bench {
namespace {

uint64_t SeedFor(const std::string& query) {
  if (SmokeMode()) return 8 * kGiB;
  if (query == "NBQ5") return 26 * kMiB;
  if (query == "NBQ8") return 190 * kGiB;
  return 180 * kGiB;  // NBQX aggregate across its five operators
}

void RunScenario(const std::string& query, Sut sut,
                 BenchArtifact* artifact) {
  TestbedOptions opts;
  opts.sut = sut;
  opts.query = query;
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  if (query == "NBQ5") {
    // Paper §5.1.4: 128 MB/s per producer of 32 B bids — millions of
    // records/s; give the modeled instances matching headroom.
    opts.gen_bytes_per_sec = 128e6;
    opts.stateful_records_per_sec = 12e6;
    opts.source_records_per_sec = 16e6;
  }  // paper §5.1.4
  Testbed tb(opts);
  tb.SeedState(SeedFor(query));
  tb.Start();
  tb.Run(2 * opts.checkpoint_interval + 10 * kSecond);  // >= 2 checkpoints

  SimTime failure_time = tb.sim.Now();
  tb.FailWorker(0);
  auto breakdown = tb.Recover(0);
  tb.Run(3 * opts.checkpoint_interval);

  std::printf("--- %s / %s: VM failure at t=%.0f s (recovery %.1f s) ---\n",
              query.c_str(), SutName(sut), ToSeconds(failure_time),
              ToSeconds(breakdown.total_us));
  PrintTimeline(tb, PrimaryOpOf(query), failure_time);

  std::string prefix = query + "." + std::string(SutName(sut));
  artifact->Set("recovery_s." + prefix, ToSeconds(breakdown.total_us));
  TimelineSummary summary =
      SummarizeTimeline(tb, PrimaryOpOf(query), failure_time);
  artifact->Set("steady_mean_ms." + prefix,
                summary.steady_mean_us / kMillisecond);
  artifact->Set("peak_after_ms." + prefix,
                summary.peak_after_us / kMillisecond);
}

/// Variant beyond the paper's figure: two VM failures drawn at random
/// inside one checkpoint interval (the second typically lands while the
/// first recovery's handovers and catch-up re-replication are still in
/// flight). Exercises the cascading-failure paths of the recovery planner;
/// with r = 2 the state survives and latency returns to steady bounds.
void RunDoubleFailureScenario(const std::string& query, Sut sut,
                              BenchArtifact* artifact) {
  TestbedOptions opts;
  opts.sut = sut;
  opts.query = query;
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  if (query == "NBQ5") {
    opts.gen_bytes_per_sec = 128e6;
    opts.stateful_records_per_sec = 12e6;
    opts.source_records_per_sec = 16e6;
  }
  Testbed tb(opts);
  tb.SeedState(SeedFor(query));

  sim::FaultInjector injector(&tb.sim, &tb.cluster, /*seed=*/11);
  injector.SetObservability(&tb.observability);
  injector.SetCrashHandler([&tb](int node) {
    tb.engine.FailNode(node);
    tb.sim.Schedule(tb.hm->options().recovery_scheduling_us,
                    [&tb, node] { tb.hm->RecoverFailedNode(node); });
  });
  tb.engine.SetFaultProbe([&](const std::string& e) { injector.Notify(e); });
  tb.replication.SetFaultProbe(
      [&](const std::string& e) { injector.Notify(e); });

  tb.Start();
  tb.Run(2 * opts.checkpoint_interval + 10 * kSecond);

  SimTime window_start = tb.sim.Now();
  injector.ScheduleRandomCrashes(2, tb.worker_nodes(),
                                 window_start + kSecond,
                                 window_start + opts.checkpoint_interval,
                                 /*min_gap=*/5 * kSecond);
  tb.Run(3 * opts.checkpoint_interval);

  std::printf("--- %s / %s: two VM failures (", query.c_str(), SutName(sut));
  for (size_t i = 0; i < injector.crashes().size(); ++i) {
    const auto& crash = injector.crashes()[i];
    std::printf("%snode %d at t=%.0f s", i > 0 ? ", " : "", crash.node,
                ToSeconds(crash.time));
  }
  std::printf(") ---\n");
  PrintTimeline(tb, PrimaryOpOf(query), window_start);

  std::string prefix = query + "." + std::string(SutName(sut));
  TimelineSummary summary =
      SummarizeTimeline(tb, PrimaryOpOf(query), window_start);
  artifact->Set("double_failure_peak_ms." + prefix,
                summary.peak_after_us / kMillisecond);
  artifact->Set("double_failure_crashes." + prefix,
                static_cast<double>(injector.crashes().size()));
}

}  // namespace
}  // namespace rhino::bench

int main() {
  using rhino::bench::SmokeMode;
  rhino::bench::BenchArtifact artifact("fig4_fault_tolerance");
  std::vector<const char*> queries = {"NBQ8", "NBQ5", "NBQX"};
  std::vector<rhino::bench::Sut> suts = {rhino::bench::Sut::kFlink,
                                         rhino::bench::Sut::kRhino,
                                         rhino::bench::Sut::kRhinoDfs};
  if (SmokeMode()) {
    queries = {"NBQ8"};
    suts = {rhino::bench::Sut::kRhino};
  }
  std::printf(
      "=== Figure 4a-c: latency around a VM failure (fault tolerance) ===\n\n");
  for (const char* query : queries) {
    for (auto sut : suts) {
      rhino::bench::RunScenario(query, sut, &artifact);
    }
  }
  std::printf(
      "\n=== Variant: two random VM failures in one checkpoint interval "
      "===\n\n");
  for (const char* query : queries) {
    for (auto sut : SmokeMode()
                        ? std::vector<rhino::bench::Sut>{
                              rhino::bench::Sut::kRhino}
                        : std::vector<rhino::bench::Sut>{
                              rhino::bench::Sut::kRhino,
                              rhino::bench::Sut::kRhinoDfs}) {
      rhino::bench::RunDoubleFailureScenario(query, sut, &artifact);
    }
  }
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
