// Ablation of Rhino's replication-protocol design choices (DESIGN.md §4):
//
//  * replica-group size r — more copies cost proportionally more transfer
//    but give more recovery targets;
//  * chunk size and credit window — the credit-based flow control trades
//    pinned memory for pipeline utilization;
//  * chain pipelining — compared against an (ablated) store-and-forward
//    policy where each hop starts only after receiving everything.

#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "metrics/table.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/sim_executor.h"
#include "sim/cluster.h"

namespace rhino::rhino {
namespace {

state::CheckpointDescriptor Desc(uint64_t delta) {
  state::CheckpointDescriptor desc;
  desc.checkpoint_id = 1;
  desc.operator_name = "op";
  desc.instance_id = 0;
  desc.files = {{"delta", delta}};
  desc.delta_files = {{"delta", delta}};
  return desc;
}

SimTime Replicate(int r, ReplicationOptions options, uint64_t delta,
                  bool store_and_forward = false) {
  runtime::SimExecutor sim;
  sim::Cluster cluster(&sim, 8);
  ReplicationManager rm({0, 1, 2, 3, 4, 5, 6, 7}, r);
  rm.BuildGroups({{"op", 0, 0, 1}});
  if (store_and_forward) {
    // Ablation: a credit window of 1 with checkpoint-sized chunks degrades
    // the chain into store-and-forward.
    options.chunk_bytes = delta;
    options.credit_window = 1;
  }
  ReplicationRuntime runtime(&cluster, &rm, options);
  SimTime completed = 0;
  runtime.ReplicateCheckpoint("op", 0, 0, Desc(delta), {},
                              [&](Status) { completed = sim.Now(); });
  sim.Run();
  return completed;
}

void Run(bench::BenchArtifact* artifact) {
  // One big incremental checkpoint (shrunk in CI smoke).
  const uint64_t delta = bench::SmokeScaled<uint64_t>(8ull * kGiB, kGiB);
  std::printf("delta = %s per instance\n\n", FormatBytes(delta).c_str());

  std::printf("--- replica-group size r (chunk 8 MiB, window 4) ---\n");
  metrics::TablePrinter r_table({"r", "replication time", "vs r=1"});
  SimTime r1 = 0;
  for (int r = 1; r <= 4; ++r) {
    SimTime t = Replicate(r, ReplicationOptions(), delta);
    if (r == 1) r1 = t;
    artifact->Set("replication_s.r" + std::to_string(r), ToSeconds(t));
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  static_cast<double>(t) / static_cast<double>(r1));
    r_table.AddRow({std::to_string(r), FormatDuration(t), ratio});
  }
  r_table.Print();

  std::printf("\n--- chain pipelining vs store-and-forward (r=3) ---\n");
  metrics::TablePrinter p_table({"mode", "replication time"});
  SimTime pipelined = Replicate(3, ReplicationOptions(), delta);
  SimTime snf = Replicate(3, ReplicationOptions(), delta,
                          /*store_and_forward=*/true);
  artifact->Set("replication_s.pipelined", ToSeconds(pipelined));
  artifact->Set("replication_s.store_and_forward", ToSeconds(snf));
  p_table.AddRow({"chain (pipelined)", FormatDuration(pipelined)});
  p_table.AddRow({"store-and-forward", FormatDuration(snf)});
  p_table.Print();

  std::printf("\n--- credit window sweep (r=2, chunk 8 MiB) ---\n");
  metrics::TablePrinter w_table({"window", "replication time",
                                 "max in-flight chunks"});
  for (int window : {1, 2, 4, 8, 16}) {
    runtime::SimExecutor sim;
    sim::Cluster cluster(&sim, 8);
    ReplicationManager rm({0, 1, 2, 3, 4, 5, 6, 7}, 2);
    rm.BuildGroups({{"op", 0, 0, 1}});
    ReplicationOptions options;
    options.credit_window = window;
    ReplicationRuntime runtime(&cluster, &rm, options);
    SimTime completed = 0;
    runtime.ReplicateCheckpoint("op", 0, 0, Desc(delta), {},
                                [&](Status) { completed = sim.Now(); });
    sim.Run();
    artifact->Set("replication_s.window" + std::to_string(window),
                  ToSeconds(completed));
    w_table.AddRow({std::to_string(window), FormatDuration(completed),
                    std::to_string(runtime.max_in_flight_chunks())});
  }
  w_table.Print();

  std::printf("\n--- chunk size sweep (r=2, window 4) ---\n");
  metrics::TablePrinter c_table({"chunk", "replication time"});
  for (uint64_t chunk : {1 * kMiB, 4 * kMiB, 8 * kMiB, 32 * kMiB, 128 * kMiB}) {
    ReplicationOptions options;
    options.chunk_bytes = chunk;
    SimTime t = Replicate(2, options, delta);
    artifact->Set("replication_s.chunk" + std::to_string(chunk / kMiB) + "MiB",
                  ToSeconds(t));
    c_table.AddRow({FormatBytes(chunk), FormatDuration(t)});
  }
  c_table.Print();
}

}  // namespace
}  // namespace rhino::rhino

int main() {
  std::printf("=== Ablation: state-centric replication protocol ===\n\n");
  rhino::bench::BenchArtifact artifact("ablation_replication");
  rhino::rhino::Run(&artifact);
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
