// Reproduces **Figure 4d-f**: latency around a vertical-scaling operation
// (adding instances on in-use workers, DOP 56 -> 64 in the paper; here the
// same 7/8 -> 8/8 ratio at the testbed's scaled parallelism).
//
// Paper shape: Flink restarts the whole query and reshuffles state
// (latency up to 570 s on NBQ8); RhinoDFS spikes to ~30 s; Rhino adds
// ~tens of ms and returns to steady within ~2 min. NBQ5 (small state) is
// uneventful on every system.

#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "harness.h"
#include "timeline_util.h"

namespace rhino::bench {
namespace {

uint64_t SeedFor(const std::string& query) {
  if (SmokeMode()) return 8 * kGiB;
  if (query == "NBQ5") return 26 * kMiB;
  if (query == "NBQ8") return 220 * kGiB;  // paper §5.4.1
  return 170 * kGiB;
}

void RunScenario(const std::string& query, Sut sut,
                 BenchArtifact* artifact) {
  TestbedOptions opts;
  opts.sut = sut;
  opts.query = query;
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  opts.spare_instances = opts.stateful_parallelism / 8;  // 7/8 active
  if (query == "NBQ5") {
    // Paper §5.1.4: 128 MB/s per producer of 32 B bids — millions of
    // records/s; give the modeled instances matching headroom.
    opts.gen_bytes_per_sec = 128e6;
    opts.stateful_records_per_sec = 12e6;
    opts.source_records_per_sec = 16e6;
  }
  Testbed tb(opts);
  tb.SeedState(SeedFor(query));
  tb.Start();
  tb.Run(2 * opts.checkpoint_interval + 10 * kSecond);

  SimTime rescale_time = tb.sim.Now();
  // Move each active instance's share onto the spares: switching to full
  // parallelism redistributes 1/8 of the state (~32 GB at 250 GB).
  tb.TriggerRescale(1.0 / 8.0);
  tb.Run(3 * opts.checkpoint_interval);

  std::printf("--- %s / %s: rescale to full parallelism at t=%.0f s ---\n",
              query.c_str(), SutName(sut), ToSeconds(rescale_time));
  PrintTimeline(tb, PrimaryOpOf(query), rescale_time);

  std::string prefix = query + "." + std::string(SutName(sut));
  TimelineSummary summary =
      SummarizeTimeline(tb, PrimaryOpOf(query), rescale_time);
  artifact->Set("steady_mean_ms." + prefix,
                summary.steady_mean_us / kMillisecond);
  artifact->Set("peak_after_ms." + prefix,
                summary.peak_after_us / kMillisecond);
  artifact->Set(
      "handover_bytes." + prefix,
      static_cast<double>(tb.observability.metrics()
                              .GetCounter("rhino_handover_bytes_total")
                              ->value()));
}

}  // namespace
}  // namespace rhino::bench

int main() {
  rhino::bench::BenchArtifact artifact("fig4_vertical_scaling");
  std::vector<const char*> queries = {"NBQ8", "NBQ5", "NBQX"};
  std::vector<rhino::bench::Sut> suts = {rhino::bench::Sut::kFlink,
                                         rhino::bench::Sut::kRhino,
                                         rhino::bench::Sut::kRhinoDfs};
  if (rhino::bench::SmokeMode()) {
    queries = {"NBQ8"};
    suts = {rhino::bench::Sut::kRhino};
  }
  std::printf("=== Figure 4d-f: latency around vertical scaling ===\n\n");
  for (const char* query : queries) {
    for (auto sut : suts) {
      rhino::bench::RunScenario(query, sut, &artifact);
    }
  }
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
