// Reproduces **Figure 1**: total time spent to reconfigure the execution
// of NBQ8 after a VM failure, for 250 GB - 1 TB of state.
//
// Paper shape: Flink grows ~72 s -> ~257 s, Megaphone ~46 s -> ~75 s then
// OOM at >= 750 GB, RhinoDFS ~15 s -> ~67 s, Rhino flat at ~4-5 s. Rhino
// is ~50x faster than Flink, ~15x faster than Megaphone, ~11x faster than
// RhinoDFS.

#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "harness.h"
#include "metrics/table.h"

namespace rhino::bench {
namespace {

void Run() {
  std::printf("=== Figure 1: time to reconfigure NBQ8 after a VM failure ===\n\n");
  BenchArtifact artifact("fig1_reconfiguration_time");
  metrics::TablePrinter table({"State", "Flink", "Megaphone", "RhinoDFS",
                               "Rhino", "Flink/Rhino", "RhinoDFS/Rhino"});

  // Smoke mode (CI): one small size still exercises every SUT and emits
  // every key class the regression checker tracks.
  std::vector<uint64_t> sizes = {250 * kGiB, 500 * kGiB, 750 * kGiB,
                                 1000 * kGiB};
  if (SmokeMode()) sizes = {16 * kGiB};
  for (uint64_t size : sizes) {
    std::map<Sut, Testbed::RecoveryBreakdown> results;
    for (Sut sut : {Sut::kFlink, Sut::kMegaphone, Sut::kRhinoDfs, Sut::kRhino}) {
      TestbedOptions opts;
      opts.sut = sut;
      opts.query = "NBQ8";
      opts.checkpoint_interval = 3 * kMinute;
      Testbed tb(opts);
      tb.SeedState(size);
      tb.Start();
      tb.Run(5 * kSecond);
      if (sut != Sut::kMegaphone) {
        tb.engine.TriggerCheckpoint();
        tb.Run(30 * kSecond);
      }
      tb.StopGenerators();
      tb.FailWorker(0);
      results[sut] = tb.Recover(0);

      std::string size_key = std::to_string(size / kGiB) + "GiB";
      const auto& r = results[sut];
      if (!r.oom) {
        artifact.Set("recovery_total_s." + size_key + "." + SutName(sut),
                     ToSeconds(r.total_us));
      }
      if (sut == Sut::kRhino) {
        // Bytes the recovery handovers actually moved, straight from the
        // protocol's own counters.
        artifact.Set(
            "handover_bytes." + size_key + ".Rhino",
            static_cast<double>(
                tb.observability.metrics()
                    .GetCounter("rhino_handover_bytes_total")->value()));
      }
    }
    auto cell = [&](Sut sut) -> std::string {
      const auto& r = results[sut];
      if (r.oom) return "OOM";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f s", ToSeconds(r.total_us));
      return buf;
    };
    auto ratio = [&](Sut a, Sut b) -> std::string {
      if (results[a].oom || results[b].oom) return "-";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0fx",
                    static_cast<double>(results[a].total_us) /
                        static_cast<double>(results[b].total_us));
      return buf;
    };
    table.AddRow({FormatBytes(size), cell(Sut::kFlink), cell(Sut::kMegaphone),
                  cell(Sut::kRhinoDfs), cell(Sut::kRhino),
                  ratio(Sut::kFlink, Sut::kRhino),
                  ratio(Sut::kRhinoDfs, Sut::kRhino)});
  }
  table.Print();
  RHINO_CHECK_OK(artifact.Write());
}

}  // namespace
}  // namespace rhino::bench

int main() {
  rhino::bench::Run();
  return 0;
}
