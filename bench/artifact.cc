#include "artifact.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/logging.h"

namespace rhino::bench {

namespace {

std::string FormatNumber(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

bool SmokeMode() {
  const char* env = std::getenv("RHINO_BENCH_SMOKE");
  return env != nullptr && std::string(env) != "0";
}

std::string BenchArtifact::ToJson() const {
  std::string out = "{\n";
  out += "  \"bench\": \"" + EscapeJson(name_) + "\",\n";
  out += std::string("  \"smoke\": ") + (SmokeMode() ? "true" : "false") +
         ",\n";
  out += "  \"info\": {";
  bool first = true;
  for (const auto& [key, value] : info_) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + EscapeJson(key) + "\": \"" + EscapeJson(value) + "\"";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"metrics\": {";
  first = true;
  for (const auto& [key, value] : values_) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + EscapeJson(key) + "\": " + FormatNumber(value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status BenchArtifact::Write() const {
  const char* dir = std::getenv("RHINO_BENCH_ARTIFACT_DIR");
  std::string path = "BENCH_" + name_ + ".json";
  if (dir != nullptr && *dir != '\0') {
    ::mkdir(dir, 0755);  // single level; fine if it already exists
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out << ToJson();
  out.close();
  if (!out) return Status::IOError("short write to " + path);
  std::printf("\nwrote %s (%zu metrics)\n", path.c_str(), values_.size());
  return Status::OK();
}

}  // namespace rhino::bench
