// Ablation of consistent hashing with virtual nodes (paper §3.2, R2):
// virtual nodes are the finest reconfiguration granularity, so their
// count controls how precisely a load-balancing handover can split an
// instance's state — and therefore how many bytes a reconfiguration has
// to move.

#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "hashring/key_groups.h"
#include "metrics/table.h"

namespace rhino::hashring {
namespace {

void Run(bench::BenchArtifact* artifact) {
  const uint32_t key_groups = 1 << 15;
  const uint32_t parallelism = 64;
  const uint64_t instance_state = 4ull * 1024 * 1024 * 1024;  // 4 GiB

  std::printf(
      "Moving ~half of one instance's load with different virtual-node "
      "granularities\n(64 instances, 2^15 key groups, 4 GiB state per "
      "instance):\n\n");
  metrics::TablePrinter table({"vnodes/instance", "key groups/vnode",
                               "movable quantum", "closest to 50%",
                               "error vs target"});
  for (uint32_t vnodes : {1u, 2u, 4u, 8u, 16u, 32u}) {
    VirtualNodeMap map(key_groups, parallelism, vnodes);
    // The movable quantum is one vnode's share of the instance state.
    uint64_t quantum = instance_state / vnodes;
    // Best achievable approximation of a 50% split.
    uint32_t take = vnodes / 2;
    if (take == 0) take = 1;
    double achieved = static_cast<double>(take) / vnodes;
    std::string vkey = std::to_string(vnodes) + "vnodes";
    artifact->Set("movable_quantum_bytes." + vkey,
                  static_cast<double>(quantum));
    artifact->Set("split_error_pct." + vkey,
                  std::abs(achieved - 0.5) * 100);
    char q[32], a[32], e[32];
    std::snprintf(q, sizeof(q), "%.0f MiB",
                  static_cast<double>(quantum) / (1024.0 * 1024.0));
    std::snprintf(a, sizeof(a), "%.1f%%", achieved * 100);
    std::snprintf(e, sizeof(e), "%.1f%%", std::abs(achieved - 0.5) * 100);
    table.AddRow({std::to_string(vnodes),
                  std::to_string(key_groups / (parallelism * vnodes)), q, a, e});
  }
  table.Print();

  std::printf(
      "\nRouting-table overhead per granularity (entries the coordinator "
      "maintains):\n\n");
  metrics::TablePrinter o_table({"vnodes/instance", "total vnodes",
                                 "table entries"});
  for (uint32_t vnodes : {1u, 4u, 16u, 64u, 128u}) {
    VirtualNodeMap map(key_groups, parallelism, vnodes);
    artifact->Set(
        "routing_entries." + std::to_string(vnodes) + "vnodes",
        static_cast<double>(map.num_vnodes()));
    o_table.AddRow({std::to_string(vnodes), std::to_string(map.num_vnodes()),
                    std::to_string(map.num_vnodes())});
  }
  o_table.Print();
}

}  // namespace
}  // namespace rhino::hashring

int main() {
  std::printf("=== Ablation: virtual-node granularity ===\n\n");
  rhino::bench::BenchArtifact artifact("ablation_vnodes");
  rhino::hashring::Run(&artifact);
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
