// Wall-clock proof of the execution substrate: the full Rhino stack
// (engine + chain replication + handover manager + LSM state) on the
// multi-threaded RealtimeExecutor, with node strands on OS threads and
// steady_clock timers instead of the discrete-event kernel.
//
// This bench reports *wall* seconds, which depend on the host machine;
// the numbers are informational (they are not regression-gated like the
// simulated-time artifacts) — what CI checks is that the scenario
// completes with exactly-once counts outside the simulator.

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "artifact.h"
#include "broker/broker.h"
#include "common/logging.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "metrics/table.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/realtime_executor.h"
#include "state/lsm_state_backend.h"

namespace rhino::rhino {
namespace {

using dataflow::Batch;
using dataflow::Engine;
using dataflow::EngineOptions;
using dataflow::ExecutionGraph;
using dataflow::ProcessingProfile;
using dataflow::QueryDef;
using dataflow::Record;

double WallSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Run(bench::BenchArtifact* artifact) {
  constexpr int kNodeThreads = 4;
  constexpr int kPartitions = 2;
  const uint64_t keys = bench::SmokeScaled<uint64_t>(256, 32);
  const int waves = bench::SmokeScaled(8, 2);

  runtime::RealtimeExecutor exec(kNodeThreads);
  sim::Cluster cluster(&exec, 5);
  broker::Broker broker({0});
  broker.CreateTopic("events", kPartitions);

  EngineOptions engine_opts;
  engine_opts.num_key_groups = 64;
  engine_opts.vnodes_per_instance = 2;
  Engine engine(&exec, &cluster, &broker, engine_opts);

  ReplicationManager rm({1, 2, 3, 4}, /*replication_factor=*/1);
  ReplicationRuntime replication(&cluster, &rm);
  RhinoCheckpointStorage storage(&cluster, &replication);
  engine.SetCheckpointStorage(&storage);
  HandoverManager hm(&engine, &rm, &replication);

  lsm::MemEnv env;
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", 4, {"src"},
                   [&env](Engine* eng, int subtask, int node) {
                     auto backend = state::LsmStateBackend::Open(
                         &env, "/state/c" + std::to_string(subtask),
                         "counter", static_cast<uint32_t>(subtask));
                     RHINO_CHECK(backend.ok());
                     return std::make_unique<dataflow::KeyedCounterOperator>(
                         eng, "counter", subtask, node, ProcessingProfile(),
                         std::move(backend).MoveValue());
                   })
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine, def, {1, 2, 3, 4});

  std::mutex counts_mu;
  std::map<uint64_t, uint64_t> counts;
  graph->sinks("sink")[0]->SetCollector([&](const Record& r) {
    std::lock_guard<std::mutex> lock(counts_mu);
    uint64_t c = std::stoull(r.payload);
    if (c > counts[r.key]) counts[r.key] = c;
  });

  std::vector<InstanceInfo> infos;
  for (auto* inst : graph->stateful("counter")) {
    infos.push_back({"counter", static_cast<uint32_t>(inst->subtask()),
                     inst->node_id(), 1});
  }
  rm.BuildGroups(infos);
  graph->StartSources();

  auto produce_wave = [&] {
    for (uint64_t key = 0; key < keys; ++key) {
      Batch batch;
      batch.create_time = exec.Now();
      batch.count = 1;
      batch.bytes = 8;
      batch.records.push_back(Record{key, exec.Now(), 8, "x"});
      broker.topic("events")
          .partition(static_cast<int>(key) % kPartitions)
          .Append(std::move(batch));
    }
  };

  metrics::TablePrinter table({"phase", "wall time", "detail"});

  // Phase 1: steady-state ingestion across the node threads.
  auto t0 = std::chrono::steady_clock::now();
  for (int w = 0; w < waves; ++w) produce_wave();
  exec.Drain();
  double ingest_s = WallSecondsSince(t0);
  uint64_t records = keys * static_cast<uint64_t>(waves);
  table.AddRow({"ingest", std::to_string(ingest_s) + " s",
                std::to_string(records) + " records"});
  artifact->Set("wall_s.ingest", ingest_s);
  artifact->Set("records.ingested", static_cast<double>(records));
  artifact->Set("records_per_s.ingest",
                static_cast<double>(records) / (ingest_s > 0 ? ingest_s : 1));

  // Phase 2: an aligned checkpoint replicated over the chains.
  t0 = std::chrono::steady_clock::now();
  engine.TriggerCheckpoint();
  exec.Drain();
  double checkpoint_s = WallSecondsSince(t0);
  RHINO_CHECK(engine.LastCompletedCheckpoint() != nullptr);
  table.AddRow({"checkpoint", std::to_string(checkpoint_s) + " s",
                "replicated to " +
                    std::to_string(replication.checkpoints_replicated()) +
                    " chains"});
  artifact->Set("wall_s.checkpoint", checkpoint_s);

  // Phase 3: live handover — move all of instance 0's vnodes while a
  // fresh wave keeps flowing.
  t0 = std::chrono::steady_clock::now();
  hm.TriggerLoadBalance("counter", /*origin=*/0, /*target=*/1, 1.0);
  produce_wave();
  exec.Drain();
  double handover_s = WallSecondsSince(t0);
  size_t completed = 0;
  for (const auto& record : engine.SnapshotHandovers()) {
    RHINO_CHECK(record.completed);
    ++completed;
  }
  table.AddRow({"handover + wave", std::to_string(handover_s) + " s",
                std::to_string(completed) + " handovers completed"});
  artifact->Set("wall_s.handover_and_wave", handover_s);
  artifact->Set("handovers.completed", static_cast<double>(completed));

  // Exactly-once: every key was produced `waves + 1` times.
  uint64_t expected = static_cast<uint64_t>(waves) + 1;
  for (uint64_t key = 0; key < keys; ++key) {
    std::lock_guard<std::mutex> lock(counts_mu);
    RHINO_CHECK(counts[key] == expected);
  }
  table.Print();
  std::printf("\nexactly-once verified: every key counted %llu times\n",
              static_cast<unsigned long long>(expected));

  artifact->Set("threads", kNodeThreads);
  artifact->SetInfo("executor", "realtime");
  artifact->SetInfo("regression_gate", "none (wall-clock, host-dependent)");
}

}  // namespace
}  // namespace rhino::rhino

int main() {
  std::printf("=== Realtime executor: handover under live traffic ===\n\n");
  rhino::bench::BenchArtifact artifact("realtime_handover");
  rhino::rhino::Run(&artifact);
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
