#include "harness.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "common/logging.h"
#include "obs/exporters.h"
#include "dataflow/sink.h"
#include "dataflow/source.h"
#include "dataflow/stateful.h"
#include "sim/resource.h"

namespace rhino::bench {

using dataflow::HandoverMove;
using dataflow::StatefulInstance;

const char* SutName(Sut sut) {
  switch (sut) {
    case Sut::kFlink:
      return "Flink";
    case Sut::kRhino:
      return "Rhino";
    case Sut::kRhinoDfs:
      return "RhinoDFS";
    case Sut::kMegaphone:
      return "Megaphone";
  }
  return "?";
}

namespace {

/// Megaphone's migration path as an in-engine HandoverDelegate: full-state
/// moves with serialization costs, everything resident in memory.
class MegaphoneDelegate : public dataflow::HandoverDelegate {
 public:
  MegaphoneDelegate(dataflow::Engine* engine,
                    baselines::MegaphoneOptions options)
      : engine_(engine), options_(options) {}

  void TransferState(const dataflow::HandoverSpec& spec,
                     const HandoverMove& move, StatefulInstance* origin,
                     StatefulInstance* target,
                     std::function<void()> done) override {
    RHINO_CHECK(origin != nullptr)
        << "Megaphone has no fault tolerance (paper §5.2.2)";
    uint64_t bytes = 0;
    for (uint32_t v : move.vnodes) bytes += origin->backend()->VnodeBytes(v);
    auto blob = origin->backend()->ExtractVnodes(move.vnodes);
    RHINO_CHECK(blob.ok());
    auto marks = origin->GetWatermarks(move.vnodes);
    dataflow::HandoverSpec spec_copy = spec;
    HandoverMove move_copy = move;

    sim::QueueResource* ser = QueueFor(origin->node_id());
    sim::QueueResource* deser = QueueFor(target->node_id() + 100000);
    int origin_node = origin->node_id();
    int target_node = target->node_id();
    ser->Submit(bytes, [this, origin_node, target_node, bytes, deser,
                        spec_copy, move_copy, origin, target, done,
                        blob = std::move(blob).MoveValue(), marks] {
      engine_->cluster()->Transfer(
          origin_node, target_node, bytes,
          [this, deser, bytes, spec_copy, move_copy, origin, target, done,
           blob, marks] {
            deser->Submit(bytes, [spec_copy, move_copy, origin, target, done,
                                  blob, marks] {
              RHINO_CHECK_OK(target->backend()->IngestVnodes(blob, false));
              target->MergeWatermarks(marks);
              origin->CompleteHandoverAsOrigin(spec_copy, move_copy);
              target->CompleteHandoverAsTarget(spec_copy, move_copy);
              done();
            });
          });
      (void)bytes;
    });
  }

 private:
  sim::QueueResource* QueueFor(int key) {
    auto it = queues_.find(key);
    if (it == queues_.end()) {
      it = queues_
               .emplace(key, std::make_unique<sim::QueueResource>(
                                 engine_->executor(), "megaphone-serde",
                                 options_.serialize_bytes_per_sec))
               .first;
    }
    return it->second.get();
  }

  dataflow::Engine* engine_;
  baselines::MegaphoneOptions options_;
  std::map<int, std::unique_ptr<sim::QueueResource>> queues_;
};

dataflow::EngineOptions MakeEngineOptions(const TestbedOptions& options) {
  dataflow::EngineOptions eo;
  eo.num_key_groups = options.num_key_groups;
  eo.vnodes_per_instance = options.vnodes_per_instance;
  return eo;
}

std::vector<int> BrokerNodes(const TestbedOptions& options) {
  std::vector<int> nodes;
  for (int i = 0; i < options.num_broker_nodes; ++i) {
    nodes.push_back(options.num_workers + i);
  }
  return nodes;
}

std::vector<int> WorkerNodeList(const TestbedOptions& options) {
  std::vector<int> nodes;
  for (int i = 0; i < options.num_workers; ++i) nodes.push_back(i);
  return nodes;
}

}  // namespace

std::vector<int> Testbed::worker_nodes() const {
  return WorkerNodeList(options);
}

Testbed::Testbed(TestbedOptions opts)
    : options(std::move(opts)),
      cluster(&sim, options.num_workers + options.num_broker_nodes),
      broker(BrokerNodes(options)),
      engine(&sim, &cluster, &broker, MakeEngineOptions(options)),
      dfs(&cluster, WorkerNodeList(options)),
      rm(WorkerNodeList(options), options.replication_factor),
      replication(&cluster, &rm, options.replication),
      rhino_storage(&cluster, &replication),
      dfs_storage(&cluster, &dfs),
      latency(&engine) {
  observability.SetClock([this] { return sim.Now(); });
  engine.SetObservability(&observability);  // before BuildQuery: instances
                                            // cache handles at registration
  replication.SetObservability(&observability);
  rm.SetObservability(&observability);
  stateful_ops = nexmark::StatefulOpsOf(options.query);
  BuildQuery();
  WireSut();
  BuildReplicaGroups();
  monitor = std::make_unique<metrics::ResourceMonitor>(
      &sim, &cluster, WorkerNodeList(options), kSecond);
  monitor->SetMemoryProbe([this] { return TotalStateBytes(); });
}

Testbed::~Testbed() {
  const char* dir = std::getenv("RHINO_TRACE_DUMP");
  if (dir == nullptr || *dir == '\0') return;
  // One pair of files per testbed: suffix with the SUT so multi-SUT
  // sweeps don't clobber each other (later runs of the same SUT do).
  std::string base = std::string(dir) + "/" + SutName(options.sut) + "_" +
                     options.query;
  Status s = obs::WriteTextFile(base + "_trace.json",
                                obs::TraceToChromeJson(observability.trace()));
  if (s.ok()) {
    s = obs::WriteTextFile(base + "_metrics.prom",
                           obs::ToPrometheusText(observability.metrics()));
  }
  if (!s.ok()) {
    RHINO_LOG(Warn) << "RHINO_TRACE_DUMP: " << s.ToString();
  }
}

void Testbed::BuildQuery() {
  nexmark::QueryConfig config;
  config.source_parallelism = options.source_parallelism;
  config.stateful_parallelism = options.stateful_parallelism;
  config.sink_parallelism = options.num_workers;
  config.source_profile.records_per_sec = options.source_records_per_sec;
  config.stateful_profile.records_per_sec = options.stateful_records_per_sec;

  // Topics + generators per query.
  auto add_stream = [&](const std::string& topic, uint32_t record_bytes,
                        double rate) {
    broker.CreateTopic(topic, options.source_parallelism);
    nexmark::GeneratorOptions gen;
    gen.tick = options.gen_tick;
    gen.bytes_per_sec = rate;
    gen.record_bytes = record_bytes;
    gen.rate_factor = options.rate_factor;
    generators.push_back(std::make_unique<nexmark::NexmarkGenerator>(
        &sim, &broker.topic(topic), gen,
        /*seed=*/42 + generators.size()));
  };

  dataflow::QueryDef def;
  if (options.query == "NBQ5") {
    add_stream("bids", nexmark::kBidBytes, options.gen_bytes_per_sec);
    def = nexmark::BuildNBQ5(config);
  } else if (options.query == "NBQ8") {
    add_stream("auctions", nexmark::kAuctionBytes, options.gen_bytes_per_sec);
    add_stream("persons", nexmark::kPersonBytes, options.gen_bytes_per_sec);
    def = nexmark::BuildNBQ8(config);
  } else if (options.query == "NBQX") {
    add_stream("auctions", nexmark::kAuctionBytes, options.gen_bytes_per_sec);
    add_stream("bids", nexmark::kBidBytes, options.gen_bytes_per_sec);
    def = nexmark::BuildNBQX(config);
  } else {
    RHINO_LOG(Fatal) << "unknown query " << options.query;
  }

  // Spare instances (rescale scenario): pre-create the routing tables and
  // move the spares' vnodes onto the active instances before wiring, so
  // gates and ownership start in the 56-of-64 configuration.
  if (options.spare_instances > 0) {
    for (const auto& op : stateful_ops) {
      auto* table = engine.GetOrCreateRouting(
          op, static_cast<uint32_t>(options.stateful_parallelism));
      uint32_t active = static_cast<uint32_t>(options.stateful_parallelism -
                                              options.spare_instances);
      uint32_t cursor = 0;
      for (uint32_t spare = active;
           spare < static_cast<uint32_t>(options.stateful_parallelism);
           ++spare) {
        for (uint32_t v : table->VnodesOfInstance(spare)) {
          table->Assign(v, cursor++ % active);
        }
      }
    }
  }

  graph = dataflow::ExecutionGraph::Build(&engine, def, WorkerNodeList(options));
}

void Testbed::WireSut() {
  switch (options.sut) {
    case Sut::kRhino: {
      engine.SetCheckpointStorage(&rhino_storage);
      hm = std::make_unique<rhino::HandoverManager>(&engine, &rm, &replication);
      break;
    }
    case Sut::kRhinoDfs: {
      engine.SetCheckpointStorage(&dfs_storage);
      rhino::HandoverOptions ho;
      ho.fetch_mode = rhino::HandoverOptions::FetchMode::kDfs;
      ho.dfs = &dfs;
      ho.dfs_paths = [this](const std::string& op, uint32_t subtask) {
        return dfs_storage.PathsFor(op, subtask);
      };
      ho.dfs_replica_lookup = [this](const std::string& op, uint32_t subtask) {
        return dfs_storage.LatestFor(op, subtask);
      };
      hm = std::make_unique<rhino::HandoverManager>(&engine, &rm, &replication,
                                                    ho);
      break;
    }
    case Sut::kFlink: {
      engine.SetCheckpointStorage(&dfs_storage);
      flink = std::make_unique<baselines::FlinkRestartController>(
          &engine, &dfs_storage,
          [](const std::string& op, uint32_t subtask) {
            return std::make_unique<state::ModeledStateBackend>(op, subtask);
          });
      break;
    }
    case Sut::kMegaphone: {
      // No checkpointing, no fault tolerance; migrations run in band.
      megaphone_delegate =
          std::make_unique<MegaphoneDelegate>(&engine, options.megaphone);
      engine.SetHandoverDelegate(megaphone_delegate.get());
      megaphone = std::make_unique<baselines::MegaphoneModel>(
          &cluster, WorkerNodeList(options), options.megaphone);
      break;
    }
  }
}

void Testbed::BuildReplicaGroups() {
  std::vector<rhino::InstanceInfo> infos;
  for (StatefulInstance* inst : engine.stateful()) {
    infos.push_back({inst->op_name(), static_cast<uint32_t>(inst->subtask()),
                     inst->node_id(),
                     std::max<uint64_t>(1, inst->backend()->SizeBytes())});
  }
  rm.BuildGroups(std::move(infos));
}

void Testbed::Start() {
  for (auto& gen : generators) gen->Start();
  graph->StartSources();
  if (options.sut != Sut::kMegaphone) {
    engine.StartPeriodicCheckpoints(options.checkpoint_interval);
  }
  monitor->Start();
}

void Testbed::StopGenerators() {
  for (auto& gen : generators) gen->Stop();
}

void Testbed::SeedState(uint64_t total_bytes) {
  // Spread evenly over stateful instances that own vnodes, then over their
  // vnodes.
  std::vector<StatefulInstance*> owners;
  for (StatefulInstance* inst : engine.stateful()) {
    if (!inst->owned_vnodes().empty()) owners.push_back(inst);
  }
  RHINO_CHECK(!owners.empty());
  uint64_t per_instance = total_bytes / owners.size();
  for (StatefulInstance* inst : owners) {
    uint64_t per_vnode = per_instance / inst->owned_vnodes().size();
    for (uint32_t v : inst->owned_vnodes()) {
      RHINO_CHECK_OK(inst->backend()->Put(v, "", "", per_vnode));
    }
    // Register the seed as checkpoint 0, already persisted per the SUT.
    auto desc = inst->backend()->Checkpoint(0);
    RHINO_CHECK(desc.ok());
    auto blobs = rhino::CaptureVnodeBlobs(inst);
    auto subtask = static_cast<uint32_t>(inst->subtask());
    switch (options.sut) {
      case Sut::kRhino:
        replication.SeedReplica(inst->op_name(), subtask, *desc,
                                std::move(blobs));
        break;
      case Sut::kFlink:
      case Sut::kRhinoDfs:
        dfs_storage.SeedCheckpoint(inst->op_name(), subtask, inst->node_id(),
                                   *desc, std::move(blobs));
        break;
      case Sut::kMegaphone:
        break;  // all state lives on the heap; nothing is persisted
    }
  }
  BuildReplicaGroups();  // re-pack with real weights
}

uint64_t Testbed::TotalStateBytes() const {
  uint64_t total = 0;
  for (StatefulInstance* inst : engine.stateful()) {
    total += inst->backend()->SizeBytes();
  }
  return total;
}

void Testbed::FailWorker(int worker_index) {
  engine.FailNode(worker_index);
}

Testbed::RecoveryBreakdown Testbed::Recover(int worker_index) {
  RecoveryBreakdown breakdown;
  SimTime start = sim.Now();
  switch (options.sut) {
    case Sut::kRhino:
    case Sut::kRhinoDfs: {
      // Failure detection + reconfiguration planning before the markers
      // are injected (part of the paper's "scheduling" phase).
      Run(hm->options().recovery_scheduling_us);
      size_t before = engine.handovers().size();
      auto ids = hm->RecoverFailedNode(worker_index);
      // Run until every recovery handover completes.
      while (true) {
        bool all_done = true;
        for (size_t i = before; i < engine.handovers().size(); ++i) {
          if (!engine.handovers()[i].completed) all_done = false;
        }
        if (all_done && engine.handovers().size() > before) break;
        if (!sim.Step()) break;
      }
      breakdown.total_us = sim.Now() - start;
      for (uint64_t id : ids) {
        const rhino::HandoverStats* stats = hm->StatsFor(id);
        if (stats == nullptr) continue;
        breakdown.state_fetch_us =
            std::max(breakdown.state_fetch_us, stats->state_fetch_us);
        breakdown.state_load_us =
            std::max(breakdown.state_load_us, stats->state_load_us);
      }
      breakdown.scheduling_us = breakdown.total_us - breakdown.state_fetch_us -
                                breakdown.state_load_us;
      if (breakdown.scheduling_us < 0) breakdown.scheduling_us = 0;
      break;
    }
    case Sut::kFlink: {
      bool finished = false;
      baselines::RestartBreakdown result;
      flink->RestartFromLastCheckpoint(worker_index,
                                       [&](baselines::RestartBreakdown b) {
                                         result = b;
                                         finished = true;
                                       });
      while (!finished && sim.Step()) {
      }
      breakdown.scheduling_us = result.scheduling_us;
      breakdown.state_fetch_us = result.state_fetch_us;
      breakdown.state_load_us = result.state_load_us;
      breakdown.total_us = sim.Now() - start;
      break;
    }
    case Sut::kMegaphone: {
      // Megaphone has no fault tolerance; the comparable operation (as in
      // the paper's benchmark) is a planned migration of the same state
      // volume off the node.
      std::map<int, uint64_t> per_origin;
      for (StatefulInstance* inst : engine.stateful()) {
        if (inst->node_id() == worker_index) {
          per_origin[worker_index] += inst->backend()->SizeBytes();
        }
      }
      bool finished = false;
      baselines::MegaphoneResult result;
      megaphone->Migrate(per_origin, TotalStateBytes(),
                         static_cast<int>(options.num_key_groups),
                         [&](baselines::MegaphoneResult r) {
                           result = r;
                           finished = true;
                         });
      while (!finished && sim.Step()) {
      }
      breakdown.oom = result.oom;
      breakdown.total_us = result.oom ? 0 : result.duration_us;
      break;
    }
  }
  return breakdown;
}

void Testbed::TriggerRescale(double) {
  // Equalize virtual-node ownership across the full parallelism: each
  // spare instance receives its fair share from the most loaded actives
  // (switching from 7/8 to 8/8 parallelism as in §5.4.1).
  uint32_t parallelism = static_cast<uint32_t>(options.stateful_parallelism);
  uint32_t active = parallelism - static_cast<uint32_t>(options.spare_instances);
  for (const auto& op : stateful_ops) {
    auto* table = engine.routing(op);
    uint32_t fair = table->map().num_vnodes() / parallelism;
    std::map<std::pair<uint32_t, uint32_t>, std::vector<uint32_t>> pair_moves;
    std::set<uint32_t> taken;  // vnodes already earmarked for a move
    uint32_t donor = 0;
    for (uint32_t spare = active; spare < parallelism; ++spare) {
      uint32_t need =
          fair - std::min<uint32_t>(
                     fair, static_cast<uint32_t>(
                               table->VnodesOfInstance(spare).size()));
      uint32_t dry_scans = 0;
      while (need > 0 && dry_scans < active) {
        uint32_t movable = 0;
        uint32_t pick = 0;
        for (uint32_t v : table->VnodesOfInstance(donor)) {
          if (!taken.count(v)) {
            ++movable;
            pick = v;
          }
        }
        if (movable > fair) {
          taken.insert(pick);
          pair_moves[{donor, spare}].push_back(pick);
          // For Flink the table changes up front (restart semantics); for
          // handovers the spec carries the reassignment.
          if (options.sut == Sut::kFlink) table->Assign(pick, spare);
          --need;
          dry_scans = 0;
        } else {
          ++dry_scans;
        }
        donor = (donor + 1) % active;
      }
    }

    if (options.sut == Sut::kFlink) {
      engine.ReinitKeyedGates(op);
      for (StatefulInstance* inst : engine.stateful()) {
        if (inst->op_name() == op) {
          inst->InitOwnedVnodes(table->VnodesOfInstance(
              static_cast<uint32_t>(inst->subtask())));
        }
      }
      continue;
    }
    std::vector<HandoverMove> moves;
    for (auto& [pair, vnodes] : pair_moves) {
      moves.push_back(HandoverMove{pair.first, pair.second, std::move(vnodes)});
    }
    if (moves.empty()) continue;
    if (hm != nullptr) {
      hm->TriggerReconfiguration(op, std::move(moves));
    } else {
      auto spec = std::make_shared<dataflow::HandoverSpec>();
      spec->id = 1000 + next_adhoc_id_++;
      spec->operator_name = op;
      spec->moves = std::move(moves);
      engine.StartHandover(spec);
    }
  }
  if (options.sut == Sut::kFlink) {
    flink->RestartFromLastCheckpoint(-1, [](baselines::RestartBreakdown) {});
  }
}

void Testbed::TriggerLoadBalance(int origins, double fraction) {
  if (options.sut == Sut::kFlink) {
    // Flink has no load balancing (paper §5.4.2); the comparable action is
    // a restart with a rebalanced key-group assignment.
    for (const auto& op : stateful_ops) {
      auto* table = engine.routing(op);
      for (int i = 0; i < origins; ++i) {
        auto origin = static_cast<uint32_t>(i);
        auto target = static_cast<uint32_t>(i + origins);
        auto vnodes = table->VnodesOfInstance(origin);
        size_t take = std::max<size_t>(
            1, static_cast<size_t>(static_cast<double>(vnodes.size()) * fraction));
        for (size_t v = 0; v < std::min(take, vnodes.size()); ++v) {
          table->Assign(vnodes[v], target);
        }
      }
      engine.ReinitKeyedGates(op);
      for (StatefulInstance* inst : engine.stateful()) {
        if (inst->op_name() == op) {
          inst->InitOwnedVnodes(table->VnodesOfInstance(
              static_cast<uint32_t>(inst->subtask())));
        }
      }
    }
    flink->RestartFromLastCheckpoint(-1, [](baselines::RestartBreakdown) {});
    return;
  }
  for (const auto& op : stateful_ops) {
    auto* table = engine.routing(op);
    std::vector<HandoverMove> moves;
    for (int i = 0; i < origins; ++i) {
      auto origin = static_cast<uint32_t>(i);
      auto target = static_cast<uint32_t>(i + origins);
      auto vnodes = table->VnodesOfInstance(origin);
      size_t take =
          std::max<size_t>(1, static_cast<size_t>(
                                  static_cast<double>(vnodes.size()) * fraction));
      vnodes.resize(std::min(take, vnodes.size()));
      if (vnodes.empty()) continue;
      moves.push_back(HandoverMove{origin, target, vnodes});
    }
    if (moves.empty()) continue;
    if (hm != nullptr) {
      hm->TriggerReconfiguration(op, std::move(moves));
    } else {
      auto spec = std::make_shared<dataflow::HandoverSpec>();
      spec->id = 1000 + next_adhoc_id_++;
      spec->operator_name = op;
      spec->moves = std::move(moves);
      engine.StartHandover(spec);
    }
  }
}

}  // namespace rhino::bench
