// Pipelined data plane vs the blocking one, over real sockets: three
// `NodeServer`s behind `RpcServer`s on kernel-assigned loopback ports, a
// `TcpTransport` driver, and state on a real filesystem under a mkdtemp
// root. Every phase builds a FRESH cluster so modes never share warmed
// caches or LSM state:
//
//   ingest (blocking)   — one batch, one round trip, nodes serially;
//   ingest (pipelined)  — credit-windowed concurrent streaming through
//                         `PipelinedChannel`s;
//   credit-window sweep — same load at window sizes 1/4/16/32;
//   checkpoint stall    — checkpoint wall time at a small and a large
//                         ingested volume, sync-replication mode (full
//                         image ships inside the barrier) vs continuous
//                         mode (stream drains in the background, the
//                         barrier is a bounded drain wait);
//   kill + recover      — SIGSTOP-equivalent fail-stop under the
//                         pipelined data plane, replica promotion, replay,
//                         and a per-key exactly-once audit.
//
// The headline ingest phases run with an emulated per-batch service
// latency (`NodeServerOptions::apply_delay_us`): single-core loopback has
// no round-trip time to hide, which is exactly what the pipelined data
// plane is for, so the bench reintroduces a controlled 500us stand-in for
// the network hop / remote storage cost of a real deployment. A zero-
// latency `_raw` pair is reported alongside to show the CPU-bound floor.
//
// Guarded keys: pipelined ingest throughput, the blocking->pipelined
// speedup (with an explicit >=2x boolean), the large-volume checkpoint
// speedup, and the exactly-once boolean. Wall seconds stay report-only.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "artifact.h"
#include "broker/broker.h"
#include "common/logging.h"
#include "common/units.h"
#include "lsm/env.h"
#include "metrics/table.h"
#include "net/driver.h"
#include "net/node_server.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "net/transport.h"

namespace rhino::net {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

constexpr uint32_t kNumNodes = 3;
constexpr uint32_t kNumVnodes = 16;
const char* const kOp = "counter";
/// Emulated per-batch service latency for the headline ingest phases
/// (see the phase comment in Run).
constexpr int kServiceDelayUs = 500;

/// One fresh cluster: nodes + RPC servers + TCP driver, with the data
/// plane mode and credit window pinned explicitly (never read from the
/// environment — a bench must compare both modes in one run).
struct PipelineCluster {
  lsm::PosixEnv* env;
  std::string root;
  TcpTransport transport;
  std::vector<std::unique_ptr<NodeServer>> nodes;
  std::vector<std::unique_ptr<RpcServer>> servers;
  std::unique_ptr<ClusterDriver> driver;
  broker::Partition partition{0};

  PipelineCluster(lsm::PosixEnv* e, const std::string& parent,
                  const std::string& tag, bool pipelined, bool continuous,
                  uint32_t credit_window, int apply_delay_us = 0)
      : env(e), root(parent + "/" + tag), transport(FastRpcOptions()) {
    RHINO_CHECK_OK(env->CreateDir(root));
    RHINO_CHECK_OK(env->CreateDir(root + "/ckpt"));
    std::vector<std::string> endpoints;
    for (uint32_t i = 0; i < kNumNodes; ++i) {
      std::string data_dir = root + "/n" + std::to_string(i);
      RHINO_CHECK_OK(env->CreateDir(data_dir));
      NodeServerOptions node_options;
      node_options.data_dir = data_dir;
      node_options.ckpt_dir = root + "/ckpt";
      node_options.continuous_replication = continuous;
      node_options.apply_delay_us = apply_delay_us;
      nodes.push_back(std::make_unique<NodeServer>(env, &transport,
                                                   std::move(node_options)));
      servers.push_back(
          std::make_unique<RpcServer>(nodes.back()->AsHandler()));
      RHINO_CHECK_OK(servers.back()->Start("127.0.0.1", 0));
      endpoints.push_back(
          FormatEndpoint("127.0.0.1", servers.back()->port()));
    }
    DriverOptions driver_options;
    driver_options.pipelined = pipelined;
    driver_options.credit_window = credit_window;
    driver = std::make_unique<ClusterDriver>(&transport, endpoints,
                                             /*obs=*/nullptr, driver_options);
    RHINO_CHECK_OK(driver->ConnectAll());
    RHINO_CHECK_OK(driver->AddOperator(kOp, kNumVnodes));
    driver->AddPartition(&partition);
    RHINO_CHECK_OK(driver->ConnectPartition(kOp, 0));
  }

  ~PipelineCluster() {
    // Streams first, then servers (member order handles the rest): no
    // replicator may be mid-call into a node being torn down.
    for (auto& node : nodes) node->StopReplication();
  }

  static RpcClientOptions FastRpcOptions() {
    RpcClientOptions options;
    options.retry.initial_backoff_us = 2 * kMillisecond;
    options.retry.max_backoff_us = 100 * kMillisecond;
    options.retry.max_attempts = 5;
    return options;
  }

  void ProduceWave(uint64_t keys) {
    dataflow::Batch batch;
    for (uint64_t key = 0; key < keys; ++key) {
      dataflow::Record rec;
      rec.key = key;
      rec.event_time = 1000;
      rec.size = 32;
      batch.records.push_back(rec);
      batch.count += 1;
      batch.bytes += rec.size;
    }
    partition.Append(std::move(batch));
  }

  /// Appends `waves` waves and drains them with ONE pump; returns the
  /// stats so callers can compute throughput over the pump wall time.
  PumpStats IngestWaves(int waves, uint64_t keys) {
    for (int w = 0; w < waves; ++w) ProduceWave(keys);
    auto pumped = driver->Pump();
    RHINO_CHECK_OK(pumped.status());
    RHINO_CHECK(pumped->applied ==
                keys * static_cast<uint64_t>(waves));
    return *pumped;
  }

  /// Blocks until every node's continuous replication stream is drained
  /// (nothing dirty, nothing in flight) — the steady state a checkpoint
  /// barrier sees when traffic pauses.
  void WaitReplIdle() {
    for (int waited_ms = 0; waited_ms < 10'000; ++waited_ms) {
      bool idle = true;
      for (uint32_t i = 0; i < kNumNodes; ++i) {
        auto stats = driver->NodeStats(i);
        RHINO_CHECK_OK(stats.status());
        if (stats->repl_dirty != 0 || stats->repl_inflight != 0) {
          idle = false;
          break;
        }
      }
      if (idle) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    RHINO_CHECK(false) << "replication stream never drained";
  }
};

/// Ingest throughput of one fresh cluster in the given mode. The
/// blocking-vs-pipelined headline keeps continuous replication OFF in
/// both clusters so it isolates the data plane (the stream's cost shows
/// up in `throughput_records_per_s.pipelined_repl` and the checkpoint
/// phase instead).
double MeasureIngest(lsm::PosixEnv* env, const std::string& parent,
                     const std::string& tag, bool pipelined, bool continuous,
                     uint32_t credit_window, int apply_delay_us, int waves,
                     uint64_t keys, PumpStats* stats_out = nullptr) {
  PipelineCluster cluster(env, parent, tag, pipelined, continuous,
                          credit_window, apply_delay_us);
  // Best of three passes over the same cluster (fresh offsets each time):
  // single-core scheduler noise swings individual pumps by ~15%, which
  // would poison a regression-gated ratio of two of them.
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    PumpStats stats = cluster.IngestWaves(waves, keys);
    double tput = static_cast<double>(stats.applied) / stats.wall_s;
    if (tput > best) {
      best = tput;
      if (stats_out != nullptr) *stats_out = stats;
    }
  }
  return best;
}

/// Checkpoint wall time after ingesting `keys` of state (fresh cluster).
/// Sync mode ships every node's full image to its successor inside the
/// barrier, so the cost grows with state volume. Continuous mode shipped
/// the deltas in the background during ingest; once the stream is idle
/// (the steady state — `WaitReplIdle`) the barrier is a drain check and
/// the checkpoint pays only the durable image write. Min over a few
/// repeats: checkpoints are idempotent and sub-millisecond walls are
/// scheduler-noisy on a small host.
double MeasureCheckpointAfter(lsm::PosixEnv* env, const std::string& parent,
                              const std::string& tag, bool pipelined,
                              int waves, uint64_t keys) {
  PipelineCluster cluster(env, parent, tag, pipelined,
                          /*continuous=*/pipelined, /*credit_window=*/16);
  cluster.IngestWaves(waves, keys);
  if (pipelined) cluster.WaitReplIdle();
  double best = 0;
  for (int rep = 0; rep < 5; ++rep) {
    auto t0 = Clock::now();
    auto ckpt = cluster.driver->Checkpoint();
    RHINO_CHECK_OK(ckpt.status());
    RHINO_CHECK(ckpt->replicated_nodes == kNumNodes);
    double wall = Seconds(t0, Clock::now());
    if (rep == 0 || wall < best) best = wall;
  }
  return best;
}

void Run(bench::BenchArtifact* artifact) {
  const uint64_t keys = bench::SmokeScaled<uint64_t>(512, 256);
  const int waves = bench::SmokeScaled(64, 32);
  const uint64_t ckpt_keys_small = 512;
  const uint64_t ckpt_keys_large = bench::SmokeScaled<uint64_t>(32768, 8192);
  const int ckpt_waves = 2;

  char root_template[] = "/tmp/rhino_dist_pipeline_XXXXXX";
  RHINO_CHECK(mkdtemp(root_template) != nullptr);
  const std::string root = root_template;
  lsm::PosixEnv env;

  metrics::TablePrinter table({"phase", "result", "detail"});

  // Phase 1+2: blocking vs pipelined ingest, identical load, fresh
  // clusters. The headline pair runs with an emulated per-batch service
  // latency (`kServiceDelayUs` — a stand-in for the network hop / remote
  // storage time a real deployment pays and single-core loopback does
  // not): the blocking pump stalls for the full latency once per batch,
  // the pipelined pump overlaps it across nodes and window slots. The
  // `_raw` pair repeats the comparison at zero emulated latency, where a
  // one-core host is purely CPU-bound and the two modes should tie — a
  // regression in either number is meaningful (overlap broken vs
  // per-submit overhead added).
  double blocking_tput = MeasureIngest(
      &env, root, "blocking", /*pipelined=*/false, /*continuous=*/false,
      /*credit_window=*/16, kServiceDelayUs, waves, keys);
  PumpStats pipelined_stats;
  double pipelined_tput = MeasureIngest(
      &env, root, "pipelined", /*pipelined=*/true, /*continuous=*/false,
      /*credit_window=*/16, kServiceDelayUs, waves, keys, &pipelined_stats);
  double blocking_raw = MeasureIngest(
      &env, root, "blocking_raw", /*pipelined=*/false, /*continuous=*/false,
      /*credit_window=*/16, /*apply_delay_us=*/0, waves, keys);
  double pipelined_raw = MeasureIngest(
      &env, root, "pipelined_raw", /*pipelined=*/true, /*continuous=*/false,
      /*credit_window=*/16, /*apply_delay_us=*/0, waves, keys);
  double repl_tput = MeasureIngest(
      &env, root, "pipelined_repl", /*pipelined=*/true, /*continuous=*/true,
      /*credit_window=*/16, kServiceDelayUs, waves, keys);
  double speedup = pipelined_tput / blocking_tput;
  table.AddRow({"ingest blocking",
                std::to_string(blocking_tput) + " rec/s",
                std::to_string(waves) + " waves x " + std::to_string(keys) +
                    " keys, " + std::to_string(kServiceDelayUs) +
                    "us service latency"});
  table.AddRow({"ingest pipelined",
                std::to_string(pipelined_tput) + " rec/s",
                "speedup " + std::to_string(speedup) + "x, max inflight " +
                    std::to_string(pipelined_stats.max_inflight) + ", " +
                    std::to_string(pipelined_stats.credit_stalls) +
                    " credit stalls"});
  table.AddRow({"ingest raw (0us)",
                std::to_string(blocking_raw) + " / " +
                    std::to_string(pipelined_raw) + " rec/s",
                "blocking / pipelined, CPU-bound loopback"});
  table.AddRow({"ingest pipelined+repl", std::to_string(repl_tput) + " rec/s",
                "continuous replication streaming during ingest"});
  artifact->Set("throughput_records_per_s.blocking", blocking_tput);
  artifact->Set("throughput_records_per_s.pipelined", pipelined_tput);
  artifact->Set("throughput_records_per_s.blocking_raw", blocking_raw);
  artifact->Set("throughput_records_per_s.pipelined_raw", pipelined_raw);
  artifact->Set("throughput_records_per_s.pipelined_repl", repl_tput);
  artifact->Set("ingest_speedup", speedup);
  artifact->Set("ingest_speedup_2x_ok", speedup >= 2.0 ? 1.0 : 0.0);
  artifact->Set("service_delay_us", kServiceDelayUs);
  artifact->Set("max_inflight.pipelined",
                static_cast<double>(pipelined_stats.max_inflight));
  artifact->Set("credit_stalls.pipelined",
                static_cast<double>(pipelined_stats.credit_stalls));

  // Phase 3: credit-window sweep (report-only — shows where backpressure
  // starts costing throughput).
  for (uint32_t window : {1u, 4u, 16u, 32u}) {
    PumpStats stats;
    double tput = MeasureIngest(&env, root,
                                "window" + std::to_string(window),
                                /*pipelined=*/true, /*continuous=*/false,
                                window, kServiceDelayUs, waves, keys, &stats);
    table.AddRow({"window " + std::to_string(window),
                  std::to_string(tput) + " rec/s",
                  std::to_string(stats.credit_stalls) + " credit stalls"});
    artifact->Set("throughput_records_per_s.window." + std::to_string(window),
                  tput);
    artifact->Set("credit_stalls.window." + std::to_string(window),
                  static_cast<double>(stats.credit_stalls));
  }

  // Phase 4: checkpoint stall vs state volume. Sync mode ships the full
  // image inside the barrier, so its wall time grows with volume;
  // continuous mode streamed the deltas during ingest and the barrier is
  // a drain check on an idle stream.
  double sync_small = MeasureCheckpointAfter(&env, root, "ckpt_sync_small",
                                             /*pipelined=*/false, ckpt_waves,
                                             ckpt_keys_small);
  double sync_large = MeasureCheckpointAfter(&env, root, "ckpt_sync_large",
                                             /*pipelined=*/false, ckpt_waves,
                                             ckpt_keys_large);
  double pipe_small = MeasureCheckpointAfter(&env, root, "ckpt_pipe_small",
                                             /*pipelined=*/true, ckpt_waves,
                                             ckpt_keys_small);
  double pipe_large = MeasureCheckpointAfter(&env, root, "ckpt_pipe_large",
                                             /*pipelined=*/true, ckpt_waves,
                                             ckpt_keys_large);
  table.AddRow({"checkpoint sync", std::to_string(sync_small) + " / " +
                                       std::to_string(sync_large) + " s",
                "small / large volume"});
  table.AddRow({"checkpoint pipelined",
                std::to_string(pipe_small) + " / " +
                    std::to_string(pipe_large) + " s",
                "small / large volume (stream off the barrier path)"});
  artifact->Set("checkpoint_wall_s.sync.small", sync_small);
  artifact->Set("checkpoint_wall_s.sync.large", sync_large);
  artifact->Set("checkpoint_wall_s.pipelined.small", pipe_small);
  artifact->Set("checkpoint_wall_s.pipelined.large", pipe_large);
  artifact->Set("checkpoint_growth.sync", sync_large / sync_small);
  artifact->Set("checkpoint_growth.pipelined", pipe_large / pipe_small);
  artifact->Set("checkpoint_speedup.large", sync_large / pipe_large);
  // The structural claim, gated as a boolean (the raw ratio of two
  // millisecond walls is too noisy for a percentage gate): at the large
  // volume the sync barrier pays the full-image ship and the drained
  // continuous stream does not.
  artifact->Set("checkpoint_stream_off_barrier_ok",
                sync_large / pipe_large >= 1.1 ? 1.0 : 0.0);

  // Phase 5: fail-stop under the pipelined plane + exactly-once audit.
  uint64_t lost = 0, duplicated = 0;
  uint64_t expected = 0;
  {
    PipelineCluster cluster(&env, root, "recover", /*pipelined=*/true,
                            /*continuous=*/true, /*credit_window=*/16);
    cluster.IngestWaves(3, keys);
    RHINO_CHECK_OK(cluster.driver->Checkpoint().status());
    cluster.IngestWaves(2, keys);  // post-checkpoint window, must replay
    cluster.servers[2]->Stop();    // fail-stop: connections refused
    RHINO_CHECK(cluster.driver->ProbeFailures() ==
                std::vector<uint32_t>{2});
    RHINO_CHECK_OK(cluster.driver->RecoverNode(2));
    RHINO_CHECK_OK(cluster.driver->Pump().status());  // replay
    cluster.ProduceWave(keys);  // steady state on the survivors
    RHINO_CHECK_OK(cluster.driver->Pump().status());
    expected = 6;
    for (uint64_t key = 0; key < keys; ++key) {
      auto count = cluster.driver->QueryCount(kOp, key);
      RHINO_CHECK_OK(count.status());
      if (*count < expected) lost += expected - *count;
      if (*count > expected) duplicated += *count - expected;
    }
  }
  artifact->Set("records.lost", static_cast<double>(lost));
  artifact->Set("records.duplicated", static_cast<double>(duplicated));
  artifact->Set("exactly_once_ok",
                (lost == 0 && duplicated == 0) ? 1.0 : 0.0);
  RHINO_CHECK(lost == 0) << lost << " records lost";
  RHINO_CHECK(duplicated == 0) << duplicated << " records duplicated";
  table.AddRow({"kill + recover", "exactly-once",
                "every key counted " + std::to_string(expected) +
                    "x after SIGKILL-style failure"});

  // Phase 6: two-stage graph throughput (report-only). The counter's
  // output records stream back in kProcessBatch replies, land in the
  // driver-resident edge log, and feed the left input of a symmetric hash
  // join whose right input is a second broker partition — every record
  // crosses the wire twice (partition -> counter, counter -> join), so
  // the number isolates the cost the edge log adds over single-stage
  // ingest.
  {
    PipelineCluster cluster(&env, root, "two_stage", /*pipelined=*/true,
                            /*continuous=*/false, /*credit_window=*/16);
    dataflow::OperatorSpec join_spec;
    join_spec.kind = dataflow::OperatorKind::kSymmetricHashJoin;
    join_spec.name = "join";
    join_spec.num_vnodes = kNumVnodes;
    join_spec.input_arity = 2;
    RHINO_CHECK_OK(cluster.driver->AddOperator(join_spec));
    broker::Partition right{1};
    cluster.driver->AddPartition(&right);
    RHINO_CHECK_OK(cluster.driver->ConnectOperators(kOp, "join", /*side=*/0));
    RHINO_CHECK_OK(cluster.driver->ConnectPartition("join", /*partition=*/1,
                                                    /*side=*/1));
    // One build wave on the right, then the probe stream on the left.
    dataflow::Batch build;
    for (uint64_t key = 0; key < keys; ++key) {
      dataflow::Record rec;
      rec.key = key;
      rec.event_time = 1000;
      rec.size = 32;
      rec.payload = "r";
      build.records.push_back(rec);
      build.count += 1;
      build.bytes += rec.size;
    }
    right.Append(std::move(build));
    const int two_stage_waves = bench::SmokeScaled(16, 8);
    for (int w = 0; w < two_stage_waves; ++w) cluster.ProduceWave(keys);
    auto pumped = cluster.driver->Pump();
    RHINO_CHECK_OK(pumped.status());
    // Applied spans both stages: counter applies every left record, the
    // join applies the build wave plus every counter output record.
    double two_stage_tput =
        static_cast<double>(pumped->applied) / pumped->wall_s;
    table.AddRow({"two-stage counter->join",
                  std::to_string(two_stage_tput) + " rec/s",
                  std::to_string(two_stage_waves) + " waves through the "
                  "edge log, both stages counted"});
    artifact->Set("throughput_records_per_s.two_stage", two_stage_tput);
  }

  table.Print();
  std::printf("\npipelined/blocking ingest speedup: %.2fx "
              "(checkpoint large-volume speedup %.2fx, 0 records lost)\n",
              speedup, sync_large / pipe_large);

  artifact->Set("nodes", kNumNodes);
  artifact->SetInfo("transport", "tcp (loopback)");
  artifact->SetInfo("regression_gate",
                    "throughput_records_per_s.pipelined, ingest_speedup, "
                    "ingest_speedup_2x_ok, checkpoint_stream_off_barrier_ok, "
                    "exactly_once_ok");

  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

}  // namespace
}  // namespace rhino::net

int main() {
  std::printf("=== Pipelined network data plane: ingest, credits, "
              "checkpoint stall ===\n\n");
  rhino::bench::BenchArtifact artifact("dist_pipeline");
  rhino::net::Run(&artifact);
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
