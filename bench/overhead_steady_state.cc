// Reproduces the paper's **§5.3 steady-state overhead** claim: with no
// reconfiguration in flight, Rhino's proactive state replication does not
// increase processing latency over the Flink baseline.
//
// Paper shape: NBQ5/NBQ8 average latency ~75-130 ms on both systems
// (identical processing routines); Rhino uses more network/disk only
// during the checkpoint/replication peaks.

#include <cstdio>

#include "harness.h"
#include "metrics/table.h"
#include "timeline_util.h"

namespace rhino::bench {
namespace {

void Run() {
  metrics::TablePrinter table({"Query", "SUT", "mean[ms]", "min[ms]",
                               "p99[ms]", "net util[%]", "disk util[%]"});
  for (const char* query : {"NBQ5", "NBQ8"}) {
    for (Sut sut : {Sut::kFlink, Sut::kRhino}) {
      TestbedOptions opts;
      opts.sut = sut;
      opts.query = query;
      opts.checkpoint_interval = kMinute;
      opts.gen_tick = kSecond;
      if (std::string(query) == "NBQ5") {
        opts.gen_bytes_per_sec = 128e6;
        opts.stateful_records_per_sec = 12e6;
        opts.source_records_per_sec = 16e6;
      }
      Testbed tb(opts);
      tb.SeedState(std::string(query) == "NBQ5" ? 26 * kMiB : 100 * kGiB);
      tb.Start();
      tb.Run(5 * kMinute);  // several checkpoint/replication cycles
      tb.StopGenerators();

      const Histogram* hist = tb.latency.HistogramFor(PrimaryOpOf(query));
      double net = 0, disk = 0;
      for (const auto& s : tb.monitor->samples()) {
        net += s.net_util;
        disk += s.disk_util;
      }
      auto n = static_cast<double>(tb.monitor->samples().size());
      char mean[32], min[32], p99[32], nu[32], du[32];
      std::snprintf(mean, sizeof(mean), "%.1f",
                    hist ? hist->Mean() / kMillisecond : 0.0);
      std::snprintf(min, sizeof(min), "%.1f",
                    hist ? static_cast<double>(hist->Min()) / kMillisecond : 0.0);
      std::snprintf(p99, sizeof(p99), "%.1f",
                    hist ? static_cast<double>(hist->Percentile(99)) / kMillisecond
                         : 0.0);
      std::snprintf(nu, sizeof(nu), "%.1f", n > 0 ? net / n * 100 : 0.0);
      std::snprintf(du, sizeof(du), "%.1f", n > 0 ? disk / n * 100 : 0.0);
      table.AddRow({query, SutName(sut), mean, min, p99, nu, du});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace rhino::bench

int main() {
  std::printf(
      "=== §5.3 steady-state overhead: latency without reconfiguration "
      "===\n\n");
  rhino::bench::Run();
  return 0;
}
