// Reproduces the paper's **§5.3 steady-state overhead** claim: with no
// reconfiguration in flight, Rhino's proactive state replication does not
// increase processing latency over the Flink baseline.
//
// Paper shape: NBQ5/NBQ8 average latency ~75-130 ms on both systems
// (identical processing routines); Rhino uses more network/disk only
// during the checkpoint/replication peaks.
//
// Also measures the observability layer's own cost: the same NBQ8/Rhino
// run is timed (wall clock) with the trace enabled and disabled; the
// difference is the `obs_overhead_pct` artifact key (budget: < 2%).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "artifact.h"
#include "common/logging.h"
#include "harness.h"
#include "metrics/table.h"
#include "timeline_util.h"

namespace rhino::bench {
namespace {

void Run(BenchArtifact* artifact) {
  metrics::TablePrinter table({"Query", "SUT", "mean[ms]", "min[ms]",
                               "p99[ms]", "rec/s", "net util[%]",
                               "disk util[%]"});
  std::vector<std::string> queries = {"NBQ5", "NBQ8"};
  if (SmokeMode()) queries = {"NBQ8"};
  const SimTime run_time = SmokeScaled(5 * kMinute, kMinute);
  for (const std::string& query : queries) {
    for (Sut sut : {Sut::kFlink, Sut::kRhino}) {
      TestbedOptions opts;
      opts.sut = sut;
      opts.query = query;
      opts.checkpoint_interval = kMinute;
      opts.gen_tick = kSecond;
      if (query == "NBQ5") {
        opts.gen_bytes_per_sec = 128e6;
        opts.stateful_records_per_sec = 12e6;
        opts.source_records_per_sec = 16e6;
      }
      Testbed tb(opts);
      tb.SeedState(query == "NBQ5" ? 26 * kMiB
                                   : SmokeScaled<uint64_t>(100 * kGiB,
                                                           8 * kGiB));
      tb.Start();
      tb.Run(run_time);  // several checkpoint/replication cycles
      tb.StopGenerators();

      const Histogram* hist = tb.latency.HistogramFor(PrimaryOpOf(query));
      // Aggregate records across the query's stateful operators, from the
      // engine's own metric registry.
      uint64_t records = 0;
      for (const std::string& op : tb.stateful_ops) {
        records += tb.observability.metrics()
                       .GetCounter("rhino_op_records_total", {{"op", op}})
                       ->value();
      }
      double throughput = static_cast<double>(records) / ToSeconds(run_time);
      double net = 0, disk = 0;
      for (const auto& s : tb.monitor->samples()) {
        net += s.net_util;
        disk += s.disk_util;
      }
      auto n = static_cast<double>(tb.monitor->samples().size());

      std::string prefix = query + "." + SutName(sut);
      if (hist != nullptr) {
        artifact->Set("latency_mean_ms." + prefix, hist->Mean() / kMillisecond);
        artifact->Set("latency_p50_ms." + prefix,
                      static_cast<double>(hist->Percentile(50)) / kMillisecond);
        artifact->Set("latency_p99_ms." + prefix,
                      static_cast<double>(hist->Percentile(99)) / kMillisecond);
      }
      artifact->Set("throughput_records_per_s." + prefix, throughput);
      artifact->Set("net_util_pct." + prefix, n > 0 ? net / n * 100 : 0.0);
      artifact->Set("disk_util_pct." + prefix, n > 0 ? disk / n * 100 : 0.0);

      char mean[32], min[32], p99[32], rps[32], nu[32], du[32];
      std::snprintf(mean, sizeof(mean), "%.1f",
                    hist ? hist->Mean() / kMillisecond : 0.0);
      std::snprintf(min, sizeof(min), "%.1f",
                    hist ? static_cast<double>(hist->Min()) / kMillisecond : 0.0);
      std::snprintf(p99, sizeof(p99), "%.1f",
                    hist ? static_cast<double>(hist->Percentile(99)) / kMillisecond
                         : 0.0);
      std::snprintf(rps, sizeof(rps), "%.2e", throughput);
      std::snprintf(nu, sizeof(nu), "%.1f", n > 0 ? net / n * 100 : 0.0);
      std::snprintf(du, sizeof(du), "%.1f", n > 0 ? disk / n * 100 : 0.0);
      table.AddRow({query, SutName(sut), mean, min, p99, rps, nu, du});
    }
  }
  table.Print();
}

/// Wall-clock seconds for one NBQ8/Rhino steady run with the trace toggle
/// in the given position (the metric counters stay on either way — they
/// are part of the claimed <2% budget).
double TimedRun(bool obs_enabled) {
  TestbedOptions opts;
  opts.sut = Sut::kRhino;
  opts.query = "NBQ8";
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  Testbed tb(opts);
  tb.observability.set_enabled(obs_enabled);
  tb.SeedState(8 * kGiB);
  tb.Start();
  auto start = std::chrono::steady_clock::now();
  tb.Run(SmokeScaled(10 * kMinute, kMinute));
  auto end = std::chrono::steady_clock::now();
  tb.StopGenerators();
  return std::chrono::duration<double>(end - start).count();
}

void MeasureObsOverhead(BenchArtifact* artifact) {
  std::printf("\n--- observability overhead (NBQ8/Rhino, wall clock) ---\n");
  // Machine-wide noise (schedulers, neighbors) swamps any single sample,
  // but it drifts slowly: adjacent runs see similar conditions. So time
  // off/on in adjacent pairs and take the median of the per-pair ratios —
  // robust where ratio-of-mins converges too slowly on a loaded box. The
  // pair order alternates because the second run of a pair is measurably
  // slower than the first regardless of the toggle (cache/boost decay).
  const int pairs = SmokeScaled(8, 2);
  double with_obs = 1e100, without_obs = 1e100;
  std::vector<double> ratios;
  for (int i = 0; i < pairs; ++i) {
    bool off_first = i % 2 == 0;
    double first = TimedRun(/*obs_enabled=*/!off_first);
    double second = TimedRun(/*obs_enabled=*/off_first);
    double off = off_first ? first : second;
    double on = off_first ? second : first;
    without_obs = std::min(without_obs, off);
    with_obs = std::min(with_obs, on);
    ratios.push_back(on / off);
  }
  std::sort(ratios.begin(), ratios.end());
  double median = ratios.size() % 2 == 1
                      ? ratios[ratios.size() / 2]
                      : (ratios[ratios.size() / 2 - 1] +
                         ratios[ratios.size() / 2]) / 2.0;
  double overhead_pct = (median - 1.0) * 100.0;
  std::printf(
      "trace off: %.3f s | trace on: %.3f s (min of %d) | "
      "median paired overhead: %+.2f%%\n",
      without_obs, with_obs, pairs, overhead_pct);
  artifact->Set("obs_wall_s.trace_off", without_obs);
  artifact->Set("obs_wall_s.trace_on", with_obs);
  artifact->Set("obs_overhead_pct", overhead_pct);
  if (SmokeMode()) {
    // An ~0.1 s timed window cannot resolve a <2% effect; the key is
    // emitted for key-parity with full runs, not for its value.
    artifact->SetInfo("obs_overhead_note",
                      "smoke window too short to resolve overhead; "
                      "run without RHINO_BENCH_SMOKE for the real number");
  }
}

}  // namespace
}  // namespace rhino::bench

int main() {
  std::printf(
      "=== §5.3 steady-state overhead: latency without reconfiguration "
      "===\n\n");
  rhino::bench::BenchArtifact artifact("overhead_steady_state");
  rhino::bench::Run(&artifact);
  rhino::bench::MeasureObsOverhead(&artifact);
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
