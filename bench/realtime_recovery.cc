// Recovery-time artifact under real threads: the full Rhino stack on the
// multi-threaded RealtimeExecutor, a node fail-stopped by the fault
// injector mid-stream, and the three wall-clock phases of the paper's
// recovery story measured directly:
//
//   detection   — crash instant until the recovery planner runs
//                 (failure-detection + scheduling delay);
//   catch-up    — recovery start until the replication factor is restored
//                 (state-centric re-replication onto surviving nodes);
//   end-to-end  — crash instant until every recovery handover completed
//                 AND the replication factor is back.
//
// The run must lose nothing: after recovery, a final wave flows through
// the re-routed pipeline and every key's count is checked exactly-once —
// `records.lost` is required to be 0.
//
// Wall seconds are host-dependent and not regression-gated (reported-only
// in check_regression.py); what CI checks is that the scenario converges
// outside the simulator with zero loss.

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "artifact.h"
#include "broker/broker.h"
#include "common/logging.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "metrics/table.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/realtime_executor.h"
#include "sim/fault_injector.h"
#include "state/lsm_state_backend.h"

namespace rhino::rhino {
namespace {

using dataflow::Batch;
using dataflow::Engine;
using dataflow::EngineOptions;
using dataflow::ExecutionGraph;
using dataflow::ProcessingProfile;
using dataflow::QueryDef;
using dataflow::Record;

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void Run(bench::BenchArtifact* artifact) {
  constexpr int kNodeThreads = 4;
  constexpr int kPartitions = 2;
  constexpr int kParallelism = 4;
  constexpr int kCrashedNode = 1;
  const uint64_t keys = bench::SmokeScaled<uint64_t>(192, 32);
  const int waves_before = bench::SmokeScaled(6, 2);
  const int waves_during = bench::SmokeScaled(4, 2);

  runtime::RealtimeExecutor exec(kNodeThreads);
  sim::Cluster cluster(&exec, 7);
  broker::Broker broker({0});
  broker.CreateTopic("events", kPartitions);

  EngineOptions engine_opts;
  engine_opts.num_key_groups = 64;
  engine_opts.vnodes_per_instance = 2;
  Engine engine(&exec, &cluster, &broker, engine_opts);

  ReplicationManager rm({1, 2, 3, 4, 5, 6}, /*replication_factor=*/2);
  ReplicationRuntime replication(&cluster, &rm);
  RhinoCheckpointStorage storage(&cluster, &replication);
  engine.SetCheckpointStorage(&storage);

  // Paper-scale handover latencies (seconds of modeled fetch/load time)
  // would dominate a wall-clock bench; compress them so the artifact
  // measures the protocol, not fixed modeling constants.
  HandoverOptions hm_opts;
  hm_opts.local_fetch_us = 5 * kMillisecond;
  hm_opts.load_fixed_us = 10 * kMillisecond;
  hm_opts.load_per_file_us = 100;
  hm_opts.recovery_scheduling_us = 25 * kMillisecond;
  HandoverManager hm(&engine, &rm, &replication, hm_opts);

  sim::FaultInjector injector(&exec, &cluster, /*seed=*/4242);

  std::mutex phase_mu;
  Clock::time_point t_crash, t_detected;
  bool detected = false;
  injector.SetCrashHandler([&](int node) {
    {
      std::lock_guard<std::mutex> lock(phase_mu);
      t_crash = Clock::now();
    }
    engine.FailNode(node);
    exec.Schedule(hm_opts.recovery_scheduling_us, [&, node] {
      {
        std::lock_guard<std::mutex> lock(phase_mu);
        t_detected = Clock::now();
        detected = true;
      }
      hm.RecoverFailedNode(node);
    });
  });

  lsm::MemEnv env;
  QueryDef def;
  def.AddSource("src", "events", kPartitions)
      .AddStateful("counter", kParallelism, {"src"},
                   [&env](Engine* eng, int subtask, int node) {
                     auto backend = state::LsmStateBackend::Open(
                         &env, "/state/c" + std::to_string(subtask),
                         "counter", static_cast<uint32_t>(subtask));
                     RHINO_CHECK(backend.ok());
                     return std::make_unique<dataflow::KeyedCounterOperator>(
                         eng, "counter", subtask, node, ProcessingProfile(),
                         std::move(backend).MoveValue());
                   })
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine, def, {1, 2, 3, 4, 5, 6});

  std::mutex counts_mu;
  std::map<uint64_t, uint64_t> counts;
  graph->sinks("sink")[0]->SetCollector([&](const Record& r) {
    std::lock_guard<std::mutex> lock(counts_mu);
    uint64_t c = std::stoull(r.payload);
    if (c > counts[r.key]) counts[r.key] = c;
  });

  std::vector<InstanceInfo> infos;
  for (auto* inst : graph->stateful("counter")) {
    infos.push_back({"counter", static_cast<uint32_t>(inst->subtask()),
                     inst->node_id(), 1});
  }
  rm.BuildGroups(infos);
  graph->StartSources();

  auto produce_wave = [&] {
    for (uint64_t key = 0; key < keys; ++key) {
      Batch batch;
      batch.create_time = exec.Now();
      batch.count = 1;
      batch.bytes = 8;
      batch.records.push_back(Record{key, exec.Now(), 8, "x"});
      broker.topic("events")
          .partition(static_cast<int>(key) % kPartitions)
          .Append(std::move(batch));
    }
  };

  metrics::TablePrinter table({"phase", "wall time", "detail"});

  // Phase 1: steady state — waves flow, a checkpoint replicates over the
  // chains (the recovery baseline the failed node's state restores from).
  auto t0 = Clock::now();
  for (int w = 0; w < waves_before; ++w) produce_wave();
  exec.Drain();
  engine.TriggerCheckpoint();
  exec.Drain();
  RHINO_CHECK(engine.LastCompletedCheckpoint() != nullptr);
  double steady_s = Seconds(t0, Clock::now());
  table.AddRow({"steady state + checkpoint", std::to_string(steady_s) + " s",
                std::to_string(keys * static_cast<uint64_t>(waves_before)) +
                    " records"});
  artifact->Set("wall_s.steady_state", steady_s);

  // Phase 2: kill a node mid-stream. The crash fires on a wall-clock
  // timer while the producer keeps appending waves from this thread.
  injector.CrashAfter(10 * kMillisecond, kCrashedNode, "bench");
  for (int w = 0; w < waves_during; ++w) {
    produce_wave();
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
  }

  // Poll for convergence: catch-up done when re-replication has started
  // AND the replication factor is restored (degraded_groups drained);
  // recovery done when, additionally, every recovery handover completed.
  // Polling granularity bounds the measurement error (~1ms).
  Clock::time_point t_catchup{}, t_recovered{};
  bool catchup_done = false, recovered = false;
  while (!recovered) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      // The replication factor is trivially intact until the recovery
      // planner purges the dead node; don't sample before then.
      std::lock_guard<std::mutex> lock(phase_mu);
      if (!detected) continue;
    }
    bool factor_restored = replication.catchup_transfers() > 0 &&
                           rm.degraded_groups().empty();
    if (factor_restored && !catchup_done) {
      t_catchup = Clock::now();
      catchup_done = true;
    }
    if (!factor_restored) continue;
    auto handovers = engine.SnapshotHandovers();
    if (handovers.empty()) continue;
    bool all_done = true;
    for (const auto& record : handovers) all_done &= record.completed;
    if (all_done) {
      t_recovered = Clock::now();
      recovered = true;
    }
  }
  exec.Drain();
  {
    std::lock_guard<std::mutex> lock(phase_mu);
    RHINO_CHECK(detected);
  }

  double detection_s = Seconds(t_crash, t_detected);
  double catchup_s = Seconds(t_detected, t_catchup);
  double e2e_s = Seconds(t_crash, t_recovered);
  table.AddRow({"detection", std::to_string(detection_s) + " s",
                "crash -> recovery planner"});
  table.AddRow({"catch-up re-replication", std::to_string(catchup_s) + " s",
                std::to_string(replication.catchup_transfers()) +
                    " catch-up transfers, " +
                    std::to_string(replication.catchup_bytes()) + " bytes"});
  table.AddRow({"end-to-end recovery", std::to_string(e2e_s) + " s",
                "crash -> handovers complete + factor restored"});
  artifact->Set("wall_s.detection", detection_s);
  artifact->Set("wall_s.catchup_replication", catchup_s);
  artifact->Set("wall_s.recovery_end_to_end", e2e_s);
  artifact->Set("catchup.transfers",
                static_cast<double>(replication.catchup_transfers()));

  // Phase 3: a final wave through the re-routed pipeline, then the
  // exactly-once audit. Every key must have been counted once per wave:
  // anything less is a lost record, anything more a duplicate.
  produce_wave();
  exec.Drain();
  uint64_t expected =
      static_cast<uint64_t>(waves_before + waves_during) + 1;
  uint64_t lost = 0, duplicated = 0;
  {
    std::lock_guard<std::mutex> lock(counts_mu);
    for (uint64_t key = 0; key < keys; ++key) {
      uint64_t have = counts[key];
      if (have < expected) lost += expected - have;
      if (have > expected) duplicated += have - expected;
    }
  }
  artifact->Set("records.lost", static_cast<double>(lost));
  artifact->Set("records.duplicated", static_cast<double>(duplicated));
  artifact->Set("records.expected_per_key", static_cast<double>(expected));
  RHINO_CHECK(lost == 0) << lost << " records lost";
  RHINO_CHECK(duplicated == 0) << duplicated << " records duplicated";

  table.Print();
  std::printf("\nexactly-once verified: every key counted %llu times, "
              "0 records lost\n",
              static_cast<unsigned long long>(expected));

  artifact->Set("threads", kNodeThreads);
  artifact->SetInfo("executor", "realtime");
  artifact->SetInfo("crashed_node", std::to_string(kCrashedNode));
  artifact->SetInfo("regression_gate", "none (wall-clock, host-dependent)");
}

}  // namespace
}  // namespace rhino::rhino

int main() {
  std::printf("=== Realtime executor: node failure and recovery ===\n\n");
  rhino::bench::BenchArtifact artifact("realtime_recovery");
  rhino::rhino::Run(&artifact);
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
