// Reproduces **Table 1**: time breakdown (scheduling / state fetching /
// state loading, seconds) for state migration during a recovery of NBQ8
// with 250 GB - 1 TB of operator state, for Flink, Rhino, RhinoDFS, and
// Megaphone.
//
// Paper reference values (seconds):
//   250 GB  Flink 2.2/68.2/1.3   Rhino 2.8/0.2/1.3  RhinoDFS 2.9/10.7/1.3
//           Megaphone total 46.3
//   1 TB    Flink 2.4/252.9/1.5  Rhino 3.0/0.2/1.5  RhinoDFS 2.9/62.7/1.5
//           Megaphone OOM (>= 750 GB)

#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "harness.h"
#include "metrics/table.h"

namespace rhino::bench {
namespace {

std::string Secs(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ToSeconds(t));
  return buf;
}

void Run() {
  std::printf("=== Table 1: recovery time breakdown, NBQ8, VM failure ===\n");
  std::printf("(seconds; paper values in header comment of this binary)\n\n");
  BenchArtifact artifact("tab1_recovery_breakdown");
  metrics::TablePrinter table(
      {"State", "SUT", "Scheduling", "StateFetch", "StateLoad", "Total"});

  std::vector<uint64_t> sizes = {250 * kGiB, 500 * kGiB, 750 * kGiB,
                                 1000 * kGiB};
  if (SmokeMode()) sizes = {16 * kGiB};
  const Sut suts[] = {Sut::kFlink, Sut::kRhino, Sut::kRhinoDfs,
                      Sut::kMegaphone};

  for (uint64_t size : sizes) {
    for (Sut sut : suts) {
      TestbedOptions opts;
      opts.sut = sut;
      opts.query = "NBQ8";
      opts.checkpoint_interval = 3 * kMinute;  // paper §5.2.1
      Testbed tb(opts);
      tb.SeedState(size);
      tb.Start();
      tb.Run(5 * kSecond);  // brief steady phase
      if (sut != Sut::kMegaphone) {
        tb.engine.TriggerCheckpoint();
        tb.Run(30 * kSecond);  // let the checkpoint + replication finish
      }
      tb.StopGenerators();
      tb.FailWorker(0);
      auto breakdown = tb.Recover(0);

      std::string size_key = std::to_string(size / kGiB) + "GiB";
      std::string prefix = size_key + "." + SutName(sut);
      if (!breakdown.oom) {
        artifact.Set("total_s." + prefix, ToSeconds(breakdown.total_us));
        if (sut != Sut::kMegaphone) {
          artifact.Set("scheduling_s." + prefix,
                       ToSeconds(breakdown.scheduling_us));
          artifact.Set("state_fetch_s." + prefix,
                       ToSeconds(breakdown.state_fetch_us));
          artifact.Set("state_load_s." + prefix,
                       ToSeconds(breakdown.state_load_us));
        }
      }

      std::string label = FormatBytes(size);
      if (breakdown.oom) {
        table.AddRow({label, SutName(sut), "Out-of-Memory", "", "", ""});
      } else if (sut == Sut::kMegaphone) {
        table.AddRow({label, SutName(sut), Secs(breakdown.total_us), "-", "-",
                      Secs(breakdown.total_us)});
      } else {
        table.AddRow({label, SutName(sut), Secs(breakdown.scheduling_us),
                      Secs(breakdown.state_fetch_us),
                      Secs(breakdown.state_load_us),
                      Secs(breakdown.total_us)});
      }
    }
  }
  table.Print();
  RHINO_CHECK_OK(artifact.Write());
}

}  // namespace
}  // namespace rhino::bench

int main() {
  rhino::bench::Run();
  return 0;
}
