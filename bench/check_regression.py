#!/usr/bin/env python3
"""Compare BENCH_*.json artifacts against committed baselines.

Usage:
    check_regression.py --baseline bench/baselines --current <dir> [options]

Every artifact in the current directory is matched with the baseline of
the same name. For keys matching the guarded patterns, a worsening of
more than --threshold (default 20%) fails the check. "Worse" is
direction-aware: for throughput keys higher is better, for everything
else (times, latencies) lower is better.

Keys present only on one side are reported but never fail the check
(benches grow keys over time) — EXCEPT guarded keys: a baseline key that
matches a guarded pattern but is absent from the current artifact fails,
exactly like a guarded artifact missing wholesale, so a bench can't
silently stop emitting the number that gates it.
"""

import argparse
import fnmatch
import json
import os
import sys

# (artifact name, key glob) pairs that gate CI. Handover/recovery time and
# steady-state throughput are the paper's headline claims; the micro_lsm
# keys guard the block-granular read path (warm point-get latency, scan
# throughput, the cache-bounded scan memory profile) and the streaming
# write path (group-commit speedup and per-entry WAL cost, the bounded
# flush/compaction build buffer, and vnode-restore ingest throughput).
GUARDED = [
    ("fig1_reconfiguration_time", "recovery_total_s.*"),
    ("overhead_steady_state", "throughput_records_per_s.*"),
    ("overhead_steady_state", "latency_p99_ms.*"),
    ("micro_lsm", "point_get_us.warm"),
    ("micro_lsm", "point_get_us.cold_blockread"),
    ("micro_lsm", "throughput_scan_entries_per_s.*"),
    ("micro_lsm", "range_scan_peak_cache_bytes.*"),
    ("micro_lsm", "throughput_put_batched_per_s"),
    ("micro_lsm", "put_batched_speedup"),
    ("micro_lsm", "wal_appends_per_1k_entries.batched"),
    ("micro_lsm", "wal_bytes_per_entry.*"),
    ("micro_lsm", "write_peak_buffer_bytes.*"),
    ("micro_lsm", "throughput_ingest_vnodes_mb_per_s"),
    # Sharded-concurrency lane: multi-threaded put/get/scan throughput and
    # the machine-aware 4-thread put-scaling gate (1.0 = the speedup claim
    # holds, or the machine is too small to test it; 0.0 = a real miss).
    ("micro_lsm", "throughput_mt_put_per_s.*"),
    ("micro_lsm", "throughput_mt_get_per_s.*"),
    ("micro_lsm", "throughput_mt_scan_entries_per_s.*"),
    ("micro_lsm", "mt_put_speedup_4t_ok"),
    # Pipelined data plane: the credit-windowed pump must keep beating the
    # blocking one under emulated service latency (>=2x is the claim, the
    # raw ratio catches slower drifts), the drained continuous-replication
    # stream must keep the full-image ship off the checkpoint barrier, and
    # the kill/recover/replay audit must stay exactly-once.
    ("dist_pipeline", "throughput_records_per_s.pipelined"),
    ("dist_pipeline", "ingest_speedup"),
    ("dist_pipeline", "ingest_speedup_2x_ok"),
    ("dist_pipeline", "checkpoint_stream_off_barrier_ok"),
    ("dist_pipeline", "exactly_once_ok"),
]

# (artifact name, key glob) pairs that are REPORT-ONLY: wall-clock numbers
# from the realtime executor are host-dependent, so their deltas are
# printed for visibility but never gate CI. A report-only artifact missing
# from the current run is noted, not failed.
REPORT_ONLY = [
    ("realtime_handover", "wall_s.*"),
    ("realtime_handover", "records_per_s.*"),
    ("realtime_handover", "records.ingested"),
    ("realtime_handover", "handovers.completed"),
    ("realtime_handover", "threads"),
    ("realtime_recovery", "wall_s.*"),
    ("realtime_recovery", "records.*"),
    ("realtime_recovery", "catchup.transfers"),
    ("realtime_recovery", "threads"),
    ("dist_handover", "wall_s.*"),
    ("dist_handover", "records_per_s.*"),
    ("dist_handover", "records.*"),
    ("dist_handover", "vnodes.moved"),
    ("dist_handover", "nodes"),
    # Amplification accounting: WA/RA depend on workload shape and cache
    # budget, not code speed — tracked for drift, not gated (a genuine WA
    # regression shows up as a guarded throughput regression anyway).
    ("micro_lsm", "write_amplification"),
    ("micro_lsm", "read_amplification"),
    ("micro_lsm", "*_per_user_byte"),
    ("micro_lsm", "compaction_in_mb"),
    ("micro_lsm", "compaction_out_mb"),
    ("micro_lsm", "user_write_mb"),
    ("micro_lsm", "sst_read_bytes_per_get"),
    ("micro_lsm", "sst_blocks_read_per_get"),
    ("micro_lsm", "write_stall_ms"),
    ("micro_lsm", "mt_write_stall_ms.*"),
    ("micro_lsm", "mt_put_speedup_4t"),
    ("micro_lsm", "hardware_threads"),
    # Pipelined data plane: absolute throughputs other than the guarded
    # pipelined headline (the blocking number only exists as the speedup
    # denominator, the window sweep is exploratory) and millisecond-scale
    # checkpoint walls, which are too scheduler-noisy on small hosts to
    # gate as percentages (their structural claim gates through the
    # checkpoint_stream_off_barrier_ok boolean above).
    ("dist_pipeline", "throughput_records_per_s.*"),
    ("dist_pipeline", "checkpoint_wall_s.*"),
    ("dist_pipeline", "checkpoint_growth.*"),
    ("dist_pipeline", "checkpoint_speedup.*"),
    ("dist_pipeline", "credit_stalls.*"),
    ("dist_pipeline", "max_inflight.*"),
    ("dist_pipeline", "records.*"),
    ("dist_pipeline", "service_delay_us"),
    ("dist_pipeline", "nodes"),
]

# Keys where a higher current value is an improvement. `*_ok` booleans
# encode "claim holds" as 1.0, so a drop to 0.0 must read as a regression.
HIGHER_IS_BETTER = ["throughput_*", "*speedup*", "*_ok"]


def load_artifacts(directory):
    artifacts = {}
    if not os.path.isdir(directory):
        return artifacts
    for entry in sorted(os.listdir(directory)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot parse {path}: {e}")
            sys.exit(2)
        name = doc.get("bench", entry[len("BENCH_"):-len(".json")])
        artifacts[name] = doc.get("metrics", {})
    return artifacts


def is_guarded(bench, key):
    return any(
        bench == gb and fnmatch.fnmatch(key, gk) for gb, gk in GUARDED
    )


def is_report_only(bench, key):
    return any(
        bench == rb and fnmatch.fnmatch(key, rk) for rb, rk in REPORT_ONLY
    )


def higher_is_better(key):
    return any(fnmatch.fnmatch(key, pat) for pat in HIGHER_IS_BETTER)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory with committed BENCH_*.json baselines")
    parser.add_argument("--current", default=".",
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="allowed regression in percent (default 20)")
    parser.add_argument("--min-abs", type=float, default=1e-3,
                        help="ignore regressions where both values are below "
                             "this magnitude (noise floor)")
    args = parser.parse_args()

    baseline = load_artifacts(args.baseline)
    current = load_artifacts(args.current)
    if not baseline:
        print(f"error: no baselines found in {args.baseline}")
        return 2
    if not current:
        print(f"error: no artifacts found in {args.current}")
        return 2

    failures = []
    compared = 0
    for bench, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(bench)
        if cur_metrics is None:
            if any(gb == bench for gb, _ in GUARDED):
                failures.append(f"{bench}: guarded artifact missing from "
                                f"current run")
            else:
                print(f"note: {bench} not present in current run")
            continue
        for key, base_value in sorted(base_metrics.items()):
            if key not in cur_metrics:
                if is_guarded(bench, key):
                    failures.append(f"{bench}/{key}: guarded key missing "
                                    f"from current artifact")
                else:
                    print(f"note: {bench}/{key} missing from current run")
                continue
            cur_value = cur_metrics[key]
            compared += 1
            if not is_guarded(bench, key):
                if is_report_only(bench, key) and base_value != 0:
                    delta_pct = (cur_value - base_value) / abs(base_value) * 100
                    print(f"INFO {bench}/{key}: {base_value:.6g} -> "
                          f"{cur_value:.6g} ({delta_pct:+.1f}%, report-only)")
                continue
            if abs(base_value) < args.min_abs and abs(cur_value) < args.min_abs:
                continue
            if base_value == 0:
                continue
            if higher_is_better(key):
                delta_pct = (base_value - cur_value) / abs(base_value) * 100
            else:
                delta_pct = (cur_value - base_value) / abs(base_value) * 100
            status = "OK"
            if delta_pct > args.threshold:
                status = "FAIL"
                failures.append(
                    f"{bench}/{key}: {base_value:.6g} -> {cur_value:.6g} "
                    f"({delta_pct:+.1f}% worse)")
            print(f"{status:4} {bench}/{key}: {base_value:.6g} -> "
                  f"{cur_value:.6g} ({delta_pct:+.1f}%)")

    print(f"\ncompared {compared} keys across {len(current)} artifacts")
    if failures:
        print(f"\n{len(failures)} regression(s) over {args.threshold:.0f}%:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
