#pragma once

#include <algorithm>
#include <cstdio>
#include <string>

#include "harness.h"
#include "metrics/table.h"
#include "metrics/timeline.h"

/// \file timeline_util.h
/// Shared printing for the Figure 4/6 latency-timeline benches.

namespace rhino::bench {

/// The instrumented stateful operator of each query (paper §5.1.5:
/// "we instrument the join and aggregation operators").
inline std::string PrimaryOpOf(const std::string& query) {
  if (query == "NBQ5") return "nbq5-agg";
  if (query == "NBQ8") return "nbq8-join";
  return "nbqx-tumbling";
}

/// Headline numbers of a latency timeline around a reconfiguration: the
/// average of the bucket means before it, and the worst bucket mean after.
struct TimelineSummary {
  double steady_mean_us = 0;
  double peak_after_us = 0;
};

inline TimelineSummary SummarizeTimeline(const Testbed& tb,
                                         const std::string& op,
                                         SimTime reconfig_time) {
  TimelineSummary summary;
  const metrics::TimeSeries* series = tb.latency.Series(op);
  if (series == nullptr || series->empty()) return summary;
  double sum = 0;
  int n = 0;
  for (const auto& b : series->Buckets()) {
    if (b.start < reconfig_time) {
      sum += b.Mean();
      ++n;
    } else {
      summary.peak_after_us = std::max(summary.peak_after_us, b.Mean());
    }
  }
  summary.steady_mean_us = n > 0 ? sum / n : 0;
  return summary;
}

/// Prints the bucketed latency timeline of `op` with a marker at the
/// reconfiguration time, then a summary (steady mean before, peak after,
/// the paper's headline comparison).
inline void PrintTimeline(const Testbed& tb, const std::string& op,
                          SimTime reconfig_time, SimTime bucket = 10 * kSecond) {
  const metrics::TimeSeries* series = tb.latency.Series(op);
  if (series == nullptr || series->empty()) {
    std::printf("  (no latency samples for %s)\n", op.c_str());
    return;
  }
  metrics::TimeSeries coarse(bucket);
  for (const auto& b : series->Buckets()) {
    if (b.count > 0) coarse.Add(b.start, b.Mean());
  }
  metrics::TablePrinter table({"t[s]", "mean[ms]", "max[ms]", ""});
  for (const auto& b : coarse.Buckets()) {
    char t[32], mean[32], max[32];
    std::snprintf(t, sizeof(t), "%.0f", ToSeconds(b.start));
    std::snprintf(mean, sizeof(mean), "%.1f", b.Mean() / kMillisecond);
    std::snprintf(max, sizeof(max), "%.1f", b.max / kMillisecond);
    bool at_reconfig = b.start <= reconfig_time && reconfig_time < b.start + bucket;
    table.AddRow({t, mean, max, at_reconfig ? "<- reconfiguration" : ""});
  }
  table.Print();

  TimelineSummary summary = SummarizeTimeline(tb, op, reconfig_time);
  std::printf("  steady mean before: %.1f ms | peak after: %.1f ms (%.2f s)\n\n",
              summary.steady_mean_us / kMillisecond,
              summary.peak_after_us / kMillisecond,
              summary.peak_after_us / kSecond);
}

}  // namespace rhino::bench
