// Google-benchmark microbenchmarks for the hot paths of the substrates:
// the LSM store, SSTable build/lookup, bloom filters, key-group hashing,
// binary encoding, and the simulation kernel.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/serde.h"
#include "hashring/key_groups.h"
#include "lsm/bloom.h"
#include "lsm/db.h"
#include "lsm/env.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "sim/simulation.h"

namespace rhino {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_MemTableInsert(benchmark::State& state) {
  lsm::MemTable table;
  Random rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    table.Add(Key(rng.Uniform(1 << 20)), ++i, lsm::ValueType::kValue,
              "value-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemTableInsert);

void BM_MemTableLookup(benchmark::State& state) {
  lsm::MemTable table;
  for (uint64_t i = 0; i < 100000; ++i) {
    table.Add(Key(i), i, lsm::ValueType::kValue, "v");
  }
  Random rng(2);
  lsm::Entry entry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(Key(rng.Uniform(100000)), &entry));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemTableLookup);

void BM_DBPut(benchmark::State& state) {
  lsm::MemEnv env;
  auto db = lsm::DB::Open(&env, "/bench");
  Random rng(3);
  std::string value(128, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Put(Key(rng.Uniform(1 << 22)), value));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 144);
}
BENCHMARK(BM_DBPut);

void BM_DBGet(benchmark::State& state) {
  lsm::MemEnv env;
  auto db = lsm::DB::Open(&env, "/bench");
  for (uint64_t i = 0; i < 50000; ++i) {
    (void)(*db)->Put(Key(i), "value");
  }
  (void)(*db)->Flush();
  Random rng(4);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Get(Key(rng.Uniform(50000)), &value));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DBGet);

void BM_SSTableBuild(benchmark::State& state) {
  for (auto _ : state) {
    lsm::SSTableBuilder builder;
    for (uint64_t i = 0; i < 1000; ++i) {
      builder.Add(Key(i), i, lsm::ValueType::kValue, "value");
    }
    std::string file = builder.Finish();
    benchmark::DoNotOptimize(file);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SSTableBuild);

void BM_BloomLookup(benchmark::State& state) {
  lsm::BloomFilterBuilder builder(10);
  for (uint64_t i = 0; i < 10000; ++i) builder.AddKey(Key(i));
  std::string data = builder.Finish();
  lsm::BloomFilter filter(data);
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(Key(rng.Uniform(20000))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomLookup);

void BM_KeyGroupRouting(benchmark::State& state) {
  hashring::VirtualNodeMap map(1 << 15, 64, 4);
  hashring::RoutingTable table(&map);
  Random rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.InstanceForKey(rng.Next()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KeyGroupRouting);

void BM_VarintRoundTrip(benchmark::State& state) {
  Random rng(7);
  for (auto _ : state) {
    std::string buf;
    BinaryWriter writer(&buf);
    for (int i = 0; i < 64; ++i) writer.PutVarint(rng.Next());
    BinaryReader reader(buf);
    uint64_t v;
    for (int i = 0; i < 64; ++i) (void)reader.GetVarint(&v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_VarintRoundTrip);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulationEventThroughput);

}  // namespace
}  // namespace rhino

BENCHMARK_MAIN();
