// Google-benchmark microbenchmarks for the hot paths of the substrates:
// the LSM store, SSTable build/lookup, bloom filters, key-group hashing,
// binary encoding, and the simulation kernel — plus an artifact-emitting
// section (BENCH_micro_lsm.json) that measures the block-granular LSM
// read path (cold whole-file vs cold block-read vs warm point gets, the
// cache-bounded memory profile of range scans, vnode extraction) and the
// streaming write path (single vs group-committed put throughput, WAL
// appends/bytes per entry, flush/compaction peak buffering, vnode-restore
// ingest), the sharded-concurrency path (multi-threaded put/get/scan at
// 1/2/4/8 threads with a machine-aware 4-thread scaling gate), and the
// store's write/read-amplification accounting.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "artifact.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/serde.h"
#include "hashring/key_groups.h"
#include "lsm/block_cache.h"
#include "lsm/bloom.h"
#include "lsm/db.h"
#include "lsm/env.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "sim/simulation.h"
#include "state/lsm_state_backend.h"

namespace rhino {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_MemTableInsert(benchmark::State& state) {
  lsm::MemTable table;
  Random rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    table.Add(Key(rng.Uniform(1 << 20)), ++i, lsm::ValueType::kValue,
              "value-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemTableInsert);

void BM_MemTableLookup(benchmark::State& state) {
  lsm::MemTable table;
  for (uint64_t i = 0; i < 100000; ++i) {
    table.Add(Key(i), i, lsm::ValueType::kValue, "v");
  }
  Random rng(2);
  lsm::Entry entry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(Key(rng.Uniform(100000)), &entry));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemTableLookup);

void BM_DBPut(benchmark::State& state) {
  lsm::MemEnv env;
  auto db = lsm::DB::Open(&env, "/bench");
  Random rng(3);
  std::string value(128, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Put(Key(rng.Uniform(1 << 22)), value));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 144);
}
BENCHMARK(BM_DBPut);

void BM_DBGet(benchmark::State& state) {
  lsm::MemEnv env;
  auto db = lsm::DB::Open(&env, "/bench");
  for (uint64_t i = 0; i < 50000; ++i) {
    (void)(*db)->Put(Key(i), "value");
  }
  (void)(*db)->Flush();
  Random rng(4);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Get(Key(rng.Uniform(50000)), &value));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DBGet);

void BM_SSTableBuild(benchmark::State& state) {
  for (auto _ : state) {
    lsm::SSTableBuilder builder;
    for (uint64_t i = 0; i < 1000; ++i) {
      builder.Add(Key(i), i, lsm::ValueType::kValue, "value");
    }
    std::string file = builder.Finish();
    benchmark::DoNotOptimize(file);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SSTableBuild);

void BM_BloomLookup(benchmark::State& state) {
  lsm::BloomFilterBuilder builder(10);
  for (uint64_t i = 0; i < 10000; ++i) builder.AddKey(Key(i));
  std::string data = builder.Finish();
  lsm::BloomFilter filter(data);
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(Key(rng.Uniform(20000))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomLookup);

void BM_KeyGroupRouting(benchmark::State& state) {
  hashring::VirtualNodeMap map(1 << 15, 64, 4);
  hashring::RoutingTable table(&map);
  Random rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.InstanceForKey(rng.Next()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KeyGroupRouting);

void BM_VarintRoundTrip(benchmark::State& state) {
  Random rng(7);
  for (auto _ : state) {
    std::string buf;
    BinaryWriter writer(&buf);
    for (int i = 0; i < 64; ++i) writer.PutVarint(rng.Next());
    BinaryReader reader(buf);
    uint64_t v;
    for (int i = 0; i < 64; ++i) (void)reader.GetVarint(&v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_VarintRoundTrip);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulationEventThroughput);

// ------------------------------------------------- LSM read-path artifact --

/// Microseconds elapsed running `fn`.
template <typename Fn>
double TimeUs(Fn fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// Best-of-N timing: the minimum over `repeats` runs. Contention from a
/// loaded (CI) box only ever inflates a wall-clock sample, so with small
/// batches and enough repeats the minimum lands in a quiet scheduler
/// quantum and estimates the true cost — keeping the guarded regression
/// keys stable run to run.
template <typename Fn>
double MinTimeUs(int repeats, Fn fn) {
  double best = TimeUs(fn);
  for (int r = 1; r < repeats; ++r) best = std::min(best, TimeUs(fn));
  return best;
}

/// Point-get comparison on one SSTable: the pre-block-cache read path
/// (read the whole file, parse, look up) vs the streaming one (positional
/// block reads through a budgeted cache), cold and warm.
void BenchPointGets(bench::BenchArtifact* artifact) {
  const uint64_t kEntries = bench::SmokeScaled<uint64_t>(200000, 20000);
  const std::string value(64, 'v');
  lsm::MemEnv env;
  lsm::SSTableBuilder builder;
  for (uint64_t i = 0; i < kEntries; ++i) {
    builder.Add(Key(i), i, lsm::ValueType::kValue, value);
  }
  RHINO_CHECK_OK(env.WriteFile("/bench.sst", builder.Finish()));

  // Cold, whole-file: what every uncached lookup cost before the reader
  // became block-granular — fetch and parse the entire table.
  const int kColdLookups = 5;
  Random rng(11);
  lsm::Entry entry;
  double cold_wholefile_us = MinTimeUs(10, [&] {
    for (int i = 0; i < kColdLookups; ++i) {
      std::string contents;
      RHINO_CHECK_OK(env.ReadFile("/bench.sst", &contents));
      auto table = lsm::SSTableReader::Open(
          std::make_shared<const std::string>(std::move(contents)));
      RHINO_CHECK_OK(table.status());
      RHINO_CHECK_OK((*table)->Get(Key(rng.Uniform(kEntries)), &entry));
    }
  }) / kColdLookups;

  // Cold, block-granular: open handle held, cache dropped before each
  // lookup, so every get pays one positional block fetch.
  lsm::BlockCache cache(64 * 1024 * 1024);
  auto file = env.NewRandomAccessFile("/bench.sst");
  RHINO_CHECK_OK(file.status());
  auto table = lsm::SSTableReader::Open(std::move(*file), &cache);
  RHINO_CHECK_OK(table.status());
  const int kBlockLookups = 100;
  double cold_blockread_us = MinTimeUs(30, [&] {
    for (int i = 0; i < kBlockLookups; ++i) {
      cache.Clear();
      RHINO_CHECK_OK((*table)->Get(Key(rng.Uniform(kEntries)), &entry));
    }
  }) / kBlockLookups;

  // Warm: same lookups with the cache populated.
  const int kWarmLookups = 500;
  for (int i = 0; i < 4 * kWarmLookups; ++i) {  // warm-up pass
    RHINO_CHECK_OK((*table)->Get(Key(rng.Uniform(kEntries)), &entry));
  }
  double warm_us = MinTimeUs(50, [&] {
    for (int i = 0; i < kWarmLookups; ++i) {
      RHINO_CHECK_OK((*table)->Get(Key(rng.Uniform(kEntries)), &entry));
    }
  }) / kWarmLookups;

  artifact->Set("point_get_us.cold_wholefile", cold_wholefile_us);
  artifact->Set("point_get_us.cold_blockread", cold_blockread_us);
  artifact->Set("point_get_us.warm", warm_us);
  artifact->Set("point_get_speedup.warm_vs_cold_wholefile",
                cold_wholefile_us / warm_us);
}

/// Full scans of a small and a large DB through dedicated block caches:
/// the peak cache footprint must clamp at the budget for both, proving
/// scan memory is independent of state size.
void BenchRangeScans(bench::BenchArtifact* artifact) {
  const uint64_t kCacheBytes = 256 * 1024;
  const uint64_t kSmallEntries = bench::SmokeScaled<uint64_t>(50000, 5000);
  const uint64_t kLargeEntries = bench::SmokeScaled<uint64_t>(500000, 50000);
  const std::string value(128, 'v');

  auto scan = [&](uint64_t entries, const char* tag) {
    lsm::MemEnv env;
    lsm::Options opts;
    opts.block_cache = std::make_shared<lsm::BlockCache>(kCacheBytes);
    auto db = lsm::DB::Open(&env, "/bench", opts);
    RHINO_CHECK_OK(db.status());
    for (uint64_t i = 0; i < entries; ++i) {
      RHINO_CHECK_OK((*db)->Put(Key(i), value));
    }
    RHINO_CHECK_OK((*db)->Flush());
    opts.block_cache->Clear();
    opts.block_cache->ResetStats();

    uint64_t count = 0;
    double us = MinTimeUs(9, [&] {
      count = 0;
      auto it = (*db)->NewIterator();
      RHINO_CHECK_OK(it.status());
      for (; it->Valid(); it->Next()) ++count;
    });
    RHINO_CHECK(count == entries);
    artifact->Set(std::string("range_scan_peak_cache_bytes.") + tag,
                  static_cast<double>(opts.block_cache->peak_usage_bytes()));
    return count / (us / 1e6);
  };

  scan(kSmallEntries, "small_db");
  double large_rate = scan(kLargeEntries, "large_db");
  artifact->Set("throughput_scan_entries_per_s.large_db", large_rate);
  artifact->Set("range_scan_cache_budget_bytes",
                static_cast<double>(kCacheBytes));
}

/// Vnode extraction throughput: the streaming serialization that handovers
/// ship around, measured end to end over the state backend.
void BenchExtractVnodes(bench::BenchArtifact* artifact) {
  const uint32_t kVnodes = 16;
  const uint64_t kEntriesPerVnode = bench::SmokeScaled<uint64_t>(20000, 2000);
  const std::string value(128, 'v');
  lsm::MemEnv env;
  auto backend = state::LsmStateBackend::Open(&env, "/bench", "op", 0);
  RHINO_CHECK_OK(backend.status());
  for (uint32_t v = 0; v < kVnodes; ++v) {
    for (uint64_t i = 0; i < kEntriesPerVnode; ++i) {
      RHINO_CHECK_OK((*backend)->Put(v, Key(i), value, value.size()));
    }
  }
  RHINO_CHECK_OK((*backend)->db()->Flush());

  std::vector<uint32_t> vnodes(kVnodes);
  for (uint32_t v = 0; v < kVnodes; ++v) vnodes[v] = v;
  uint64_t blob_bytes = 0;
  double us = TimeUs([&] {
    auto blob = (*backend)->ExtractVnodes(vnodes);
    RHINO_CHECK_OK(blob.status());
    blob_bytes = blob->size();
  });
  artifact->Set("throughput_extract_vnodes_mb_per_s",
                (blob_bytes / 1e6) / (us / 1e6));
  artifact->Set("extract_vnodes_blob_mb", blob_bytes / 1e6);
}

// ------------------------------------------------ LSM write-path artifact --

/// Put throughput, singleton commits vs group-committed WriteBatches, and
/// the physical WAL accounting (appends and bytes per entry) behind the
/// difference: a batch pays one framed append + flush for all its entries.
/// Runs on PosixEnv — the WAL flush per commit is a real write() syscall,
/// which is exactly the per-commit cost group commit amortizes.
void BenchWritePath(bench::BenchArtifact* artifact) {
  const uint64_t kEntries = bench::SmokeScaled<uint64_t>(200000, 20000);
  const uint64_t kBatchSize = 256;
  const std::string value(64, 'v');
  lsm::PosixEnv env;
  const std::string root = "bench-writepath-tmp";
  auto fresh_dir = [&](const std::string& dir) {
    if (auto names = env.ListDir(dir); names.ok()) {
      for (const auto& name : *names) (void)env.DeleteFile(dir + "/" + name);
    }
    RHINO_CHECK_OK(env.CreateDir(dir));
  };

  double single_rate = 0;
  {
    fresh_dir(root + "/single");
    auto db = lsm::DB::Open(&env, root + "/single");
    RHINO_CHECK_OK(db.status());
    double us = TimeUs([&] {
      for (uint64_t i = 0; i < kEntries; ++i) {
        RHINO_CHECK_OK((*db)->Put(Key(i), value));
      }
    });
    single_rate = kEntries / (us / 1e6);
    artifact->Set("wal_appends_per_1k_entries.single",
                  1000.0 * (*db)->wal_appends() / (*db)->wal_records());
    artifact->Set("wal_bytes_per_entry.single",
                  static_cast<double>((*db)->wal_bytes_written()) /
                      (*db)->wal_records());
  }

  double batched_rate = 0;
  {
    fresh_dir(root + "/batched");
    auto db = lsm::DB::Open(&env, root + "/batched");
    RHINO_CHECK_OK(db.status());
    double us = TimeUs([&] {
      lsm::WriteBatch batch;
      for (uint64_t i = 0; i < kEntries; ++i) {
        batch.Put(Key(i), value);
        if (batch.num_entries() >= kBatchSize) {
          RHINO_CHECK_OK((*db)->Write(batch));
          batch.Clear();
        }
      }
      RHINO_CHECK_OK((*db)->Write(batch));
    });
    batched_rate = kEntries / (us / 1e6);
    artifact->Set("wal_appends_per_1k_entries.batched",
                  1000.0 * (*db)->wal_appends() / (*db)->wal_records());
    artifact->Set("wal_bytes_per_entry.batched",
                  static_cast<double>((*db)->wal_bytes_written()) /
                      (*db)->wal_records());
  }

  artifact->Set("throughput_put_single_per_s", single_rate);
  artifact->Set("throughput_put_batched_per_s", batched_rate);
  artifact->Set("put_batched_speedup", batched_rate / single_rate);
  for (const char* sub : {"/single", "/batched"}) {
    std::string dir = root + sub;
    if (auto names = env.ListDir(dir); names.ok()) {
      for (const auto& name : *names) (void)env.DeleteFile(dir + "/" + name);
    }
  }
}

/// Peak bytes buffered while building tables (flush + full compaction) for
/// a small and a large DB: the streaming build bounds it at ~one block
/// plus the index/bloom tail, instead of the whole table the old
/// string-assembling path materialized.
void BenchFlushPeakMemory(bench::BenchArtifact* artifact) {
  auto peak = [&](uint64_t entries, const char* tag) {
    lsm::MemEnv env;
    lsm::Options opts;
    opts.enable_wal = false;  // isolate the table-build path
    opts.memtable_bytes = 1ull << 31;  // one flush holds everything
    auto db = lsm::DB::Open(&env, "/bench-peak", opts);
    RHINO_CHECK_OK(db.status());
    const std::string value(128, 'v');
    for (uint64_t i = 0; i < entries; ++i) {
      RHINO_CHECK_OK((*db)->Put(Key(i), value));
    }
    RHINO_CHECK_OK((*db)->Flush());
    RHINO_CHECK_OK((*db)->CompactRange());
    uint64_t table_bytes = (*db)->ApproximateSize();
    artifact->Set(std::string("write_peak_buffer_bytes.") + tag,
                  static_cast<double>((*db)->write_peak_buffer_bytes()));
    artifact->Set(std::string("write_peak_buffer_fraction_of_db.") + tag,
                  static_cast<double>((*db)->write_peak_buffer_bytes()) /
                      static_cast<double>(table_bytes));
  };
  peak(bench::SmokeScaled<uint64_t>(20000, 5000), "small_db");
  peak(bench::SmokeScaled<uint64_t>(200000, 20000), "large_db");
}

/// Vnode-restore ingest throughput: replaying an extracted blob into a
/// fresh backend through group-committed batches (the handover /
/// replica-restore path).
void BenchIngestVnodes(bench::BenchArtifact* artifact) {
  const uint32_t kVnodes = 16;
  const uint64_t kEntriesPerVnode = bench::SmokeScaled<uint64_t>(20000, 2000);
  const std::string value(128, 'v');
  lsm::MemEnv env;
  auto origin = state::LsmStateBackend::Open(&env, "/bench-origin", "op", 0);
  RHINO_CHECK_OK(origin.status());
  for (uint32_t v = 0; v < kVnodes; ++v) {
    for (uint64_t i = 0; i < kEntriesPerVnode; ++i) {
      RHINO_CHECK_OK((*origin)->Put(v, Key(i), value, value.size()));
    }
  }
  std::vector<uint32_t> vnodes(kVnodes);
  for (uint32_t v = 0; v < kVnodes; ++v) vnodes[v] = v;
  auto blob = (*origin)->ExtractVnodes(vnodes);
  RHINO_CHECK_OK(blob.status());

  auto target = state::LsmStateBackend::Open(&env, "/bench-target", "op", 1);
  RHINO_CHECK_OK(target.status());
  double us = TimeUs([&] {
    RHINO_CHECK_OK((*target)->IngestVnodes(*blob, false));
  });
  artifact->Set("throughput_ingest_vnodes_mb_per_s",
                (blob->size() / 1e6) / (us / 1e6));
}

// ---------------------------------------------- LSM concurrency artifact --

/// Multi-threaded put/get/scan throughput at 1/2/4/8 threads over one
/// store with sharded memtables and background maintenance — the
/// configuration concurrent operators on the realtime executor hit. Each
/// writer owns a disjoint key stripe; scans partition the keyspace.
///
/// `mt_put_speedup_4t` is the tentpole scaling claim (4-thread puts vs
/// single-thread). Because CI runners differ, the guarded key is
/// `mt_put_speedup_4t_ok`: 1.0 when the machine has >= 4 hardware threads
/// and the speedup is >= 2x, vacuously 1.0 on smaller machines (where the
/// raw speedup is physically unattainable), 0.0 on a real miss.
void BenchMultiThreadedLsm(bench::BenchArtifact* artifact) {
  const uint64_t kOpsPerThread = bench::SmokeScaled<uint64_t>(30000, 6000);
  const std::string value(128, 'v');
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  artifact->Set("hardware_threads", static_cast<double>(hardware));

  double put_rate_1t = 0;
  double put_rate_4t = 0;
  for (int threads : {1, 2, 4, 8}) {
    lsm::MemEnv env;
    lsm::Options opts;
    opts.memtable_shards = 16;
    opts.background_maintenance = true;
    auto db = lsm::DB::Open(&env, "/bench-mt", opts);
    RHINO_CHECK_OK(db.status());
    const uint64_t total_ops = threads * kOpsPerThread;

    // Put phase: T writers on disjoint stripes.
    double put_us = TimeUs([&] {
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          for (uint64_t i = 0; i < kOpsPerThread; ++i) {
            RHINO_CHECK_OK(
                (*db)->Put(Key(t * kOpsPerThread + i), value));
          }
        });
      }
      for (auto& w : workers) w.join();
    });
    RHINO_CHECK_OK((*db)->WaitForBackgroundWork());
    double put_rate = total_ops / (put_us / 1e6);
    if (threads == 1) put_rate_1t = put_rate;
    if (threads == 4) put_rate_4t = put_rate;
    artifact->Set("throughput_mt_put_per_s.t" + std::to_string(threads),
                  put_rate);

    // Get phase: T readers, each probing random keys across all stripes.
    double get_us = TimeUs([&] {
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          Random rng(100 + t);
          std::string out;
          for (uint64_t i = 0; i < kOpsPerThread; ++i) {
            RHINO_CHECK_OK((*db)->Get(Key(rng.Uniform(total_ops)), &out));
          }
        });
      }
      for (auto& w : workers) w.join();
    });
    artifact->Set("throughput_mt_get_per_s.t" + std::to_string(threads),
                  total_ops / (get_us / 1e6));

    // Scan phase: T snapshot iterators over partitioned key ranges.
    double scan_us = TimeUs([&] {
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          auto it = (*db)->NewIterator(Key(t * kOpsPerThread),
                                       Key((t + 1) * kOpsPerThread));
          RHINO_CHECK_OK(it.status());
          uint64_t count = 0;
          for (; it->Valid(); it->Next()) ++count;
          RHINO_CHECK(count == kOpsPerThread);
        });
      }
      for (auto& w : workers) w.join();
    });
    artifact->Set("throughput_mt_scan_entries_per_s.t" +
                      std::to_string(threads),
                  total_ops / (scan_us / 1e6));
    artifact->Set("mt_write_stall_ms.t" + std::to_string(threads),
                  (*db)->stall_micros() / 1000.0);
  }

  double speedup = put_rate_4t / put_rate_1t;
  artifact->Set("mt_put_speedup_4t", speedup);
  artifact->Set("mt_put_speedup_4t_ok",
                (hardware < 4 || speedup >= 2.0) ? 1.0 : 0.0);
}

/// Write/read amplification over a compaction-heavy workload, the WA/RA
/// accounting now kept first-class by the DB: WA = physical bytes persisted
/// (WAL + flush + compaction output) per logical byte accepted; RA =
/// physical SST block bytes fetched (cache misses) per logical byte
/// returned. Overwrites force every level of rewrite work; the read phase
/// runs against a deliberately tiny cache so RA reflects block fetches,
/// not cache hits.
void BenchAmplification(bench::BenchArtifact* artifact) {
  const uint64_t kWrites = bench::SmokeScaled<uint64_t>(120000, 12000);
  const uint64_t kLiveKeys = kWrites / 4;  // 4x overwrite pressure
  const std::string value(100, 'v');
  lsm::MemEnv env;
  lsm::Options opts;
  opts.memtable_bytes = 256 * 1024;
  opts.block_cache = std::make_shared<lsm::BlockCache>(64 * 1024);
  auto db = lsm::DB::Open(&env, "/bench-amp", opts);
  RHINO_CHECK_OK(db.status());

  Random rng(21);
  // Seed every live key once (so the read phase below never misses), then
  // random overwrites supply the compaction pressure.
  for (uint64_t i = 0; i < kLiveKeys; ++i) {
    RHINO_CHECK_OK((*db)->Put(Key(i), value));
  }
  for (uint64_t i = kLiveKeys; i < kWrites; ++i) {
    RHINO_CHECK_OK((*db)->Put(Key(rng.Uniform(kLiveKeys)), value));
  }
  RHINO_CHECK_OK((*db)->CompactRange());

  double user_mb = (*db)->user_bytes_written() / 1e6;
  artifact->Set("write_amplification", (*db)->write_amplification());
  artifact->Set("wal_bytes_per_user_byte",
                (*db)->wal_bytes_written() / ((*db)->user_bytes_written() * 1.0));
  artifact->Set("flush_bytes_per_user_byte",
                (*db)->flush_bytes_written() /
                    ((*db)->user_bytes_written() * 1.0));
  artifact->Set("compaction_bytes_out_per_user_byte",
                (*db)->compaction_bytes_out() /
                    ((*db)->user_bytes_written() * 1.0));
  artifact->Set("compaction_in_mb", (*db)->compaction_bytes_in() / 1e6);
  artifact->Set("compaction_out_mb", (*db)->compaction_bytes_out() / 1e6);
  artifact->Set("user_write_mb", user_mb);
  artifact->Set("write_stall_ms", (*db)->stall_micros() / 1000.0);

  const uint64_t kReads = bench::SmokeScaled<uint64_t>(20000, 4000);
  opts.block_cache->Clear();
  std::string out;
  for (uint64_t i = 0; i < kReads; ++i) {
    RHINO_CHECK_OK((*db)->Get(Key(rng.Uniform(kLiveKeys)), &out));
  }
  artifact->Set("read_amplification", (*db)->read_amplification());
  artifact->Set("sst_read_bytes_per_get",
                (*db)->sst_bytes_read() / (kReads * 1.0));
  artifact->Set("sst_blocks_read_per_get",
                (*db)->sst_blocks_read() / (kReads * 1.0));
}

int RunLsmReadPathArtifact() {
  bench::BenchArtifact artifact("micro_lsm");
  artifact.SetInfo("mode", bench::SmokeMode() ? "smoke" : "full");
  BenchPointGets(&artifact);
  BenchRangeScans(&artifact);
  BenchExtractVnodes(&artifact);
  BenchWritePath(&artifact);
  BenchFlushPeakMemory(&artifact);
  BenchIngestVnodes(&artifact);
  BenchMultiThreadedLsm(&artifact);
  BenchAmplification(&artifact);
  Status st = artifact.Write();
  if (!st.ok()) {
    RHINO_LOG(Error) << "failed to write artifact: " << st.ToString();
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rhino

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rhino::RunLsmReadPathArtifact();
}
