// Distributed-runtime artifact over real sockets: three `NodeServer`s,
// each behind its own `RpcServer` on a kernel-assigned loopback port, a
// `TcpTransport` driver, and state on a real filesystem (`PosixEnv` under
// a mkdtemp root). Same protocol the multi-process e2e test exercises,
// but single-process so the bench can wall-clock the phases directly:
//
//   ingest     — waves routed per-vnode over RPC into the LSM shards;
//   checkpoint — barrier broadcast, per-node durable image, chain
//                replication to the ring successor;
//   handover   — live migration of every vnode node 0 owns (extract ->
//                ingest -> drop, watermarks included);
//   recovery   — fail-stop of node 2 (its RPC server stops answering),
//                failure probe, replica promotion on the ring successor,
//                cursor rewind, and the replay pump.
//
// The run must lose nothing: after recovery a final wave flows through
// the re-routed cluster and every key's count is audited exactly-once —
// `records.lost` and `records.duplicated` are required to be 0.
//
// Wall seconds are host-dependent and not regression-gated (report-only
// in check_regression.py); what CI checks is that the distributed story
// converges over real sockets with zero loss.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "artifact.h"
#include "broker/broker.h"
#include "common/logging.h"
#include "common/units.h"
#include "lsm/env.h"
#include "metrics/table.h"
#include "net/driver.h"
#include "net/node_server.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "net/transport.h"

namespace rhino::net {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

constexpr uint32_t kNumNodes = 3;
constexpr uint32_t kNumVnodes = 16;
constexpr uint32_t kFailedNode = 2;
const char* const kOp = "counter";

void Run(bench::BenchArtifact* artifact) {
  const uint64_t keys = bench::SmokeScaled<uint64_t>(256, 48);
  const int waves_before_ckpt = bench::SmokeScaled(8, 2);
  const int waves_after_ckpt = bench::SmokeScaled(4, 2);

  // Real directories so ingest/checkpoint pay real filesystem costs.
  char root_template[] = "/tmp/rhino_dist_handover_XXXXXX";
  RHINO_CHECK(mkdtemp(root_template) != nullptr);
  const std::string root = root_template;
  lsm::PosixEnv env;

  // Nodes first (each needs the shared transport for chain replication),
  // then their RPC servers on port 0 — endpoints are known only after
  // bind, which is why the driver comes last.
  RpcClientOptions rpc_opts;
  rpc_opts.retry.initial_backoff_us = 2 * kMillisecond;
  rpc_opts.retry.max_backoff_us = 100 * kMillisecond;
  rpc_opts.retry.max_attempts = 5;
  TcpTransport transport(rpc_opts);

  std::vector<std::unique_ptr<NodeServer>> nodes;
  std::vector<std::unique_ptr<RpcServer>> servers;
  std::vector<std::string> endpoints;
  for (uint32_t i = 0; i < kNumNodes; ++i) {
    std::string data_dir = root + "/n" + std::to_string(i);
    RHINO_CHECK_OK(env.CreateDir(data_dir));
    nodes.push_back(std::make_unique<NodeServer>(
        &env, &transport, NodeServerOptions{data_dir, root + "/ckpt"}));
    servers.push_back(std::make_unique<RpcServer>(nodes.back()->AsHandler()));
    RHINO_CHECK_OK(servers.back()->Start("127.0.0.1", 0));
    endpoints.push_back(FormatEndpoint("127.0.0.1", servers.back()->port()));
  }
  RHINO_CHECK_OK(env.CreateDir(root + "/ckpt"));

  ClusterDriver driver(&transport, endpoints);
  RHINO_CHECK_OK(driver.ConnectAll());
  RHINO_CHECK_OK(driver.AddOperator(kOp, kNumVnodes));
  broker::Partition partition{0};
  driver.AddPartition(&partition);
  RHINO_CHECK_OK(driver.ConnectPartition(kOp, 0));

  auto produce_wave = [&] {
    dataflow::Batch batch;
    for (uint64_t key = 0; key < keys; ++key) {
      dataflow::Record rec;
      rec.key = key;
      rec.event_time = 1000;
      rec.size = 32;
      batch.records.push_back(rec);
      batch.count += 1;
      batch.bytes += rec.size;
    }
    partition.Append(std::move(batch));
  };

  metrics::TablePrinter table({"phase", "wall time", "detail"});

  // Phase 1: ingest — every wave crosses a real socket per owning node.
  for (int w = 0; w < waves_before_ckpt; ++w) produce_wave();
  auto t0 = Clock::now();
  auto pumped = driver.Pump();
  RHINO_CHECK_OK(pumped.status());
  double ingest_s = Seconds(t0, Clock::now());
  uint64_t ingested = pumped->applied;
  RHINO_CHECK(ingested == keys * static_cast<uint64_t>(waves_before_ckpt));
  table.AddRow({"ingest", std::to_string(ingest_s) + " s",
                std::to_string(ingested) + " records, " +
                    std::to_string(pumped->batches_sent) + " RPC batches"});
  artifact->Set("wall_s.ingest", ingest_s);
  artifact->Set("records_per_s.ingest",
                static_cast<double>(ingested) / ingest_s);
  artifact->Set("records.ingested", static_cast<double>(ingested));

  // Phase 2: checkpoint — durable image per node + chain replication.
  t0 = Clock::now();
  auto ckpt = driver.Checkpoint();
  RHINO_CHECK_OK(ckpt.status());
  double ckpt_s = Seconds(t0, Clock::now());
  RHINO_CHECK(ckpt->nodes == kNumNodes);
  RHINO_CHECK(ckpt->replicated_nodes == kNumNodes);
  table.AddRow({"checkpoint", std::to_string(ckpt_s) + " s",
                std::to_string(ckpt->bytes) + " bytes over " +
                    std::to_string(ckpt->replicated_nodes) + " chain hops"});
  artifact->Set("wall_s.checkpoint", ckpt_s);

  // Phase 3: live handover — everything node 0 owns migrates to node 1.
  std::vector<uint32_t> moved = driver.VnodesOwnedBy(kOp, 0);
  RHINO_CHECK(!moved.empty());
  t0 = Clock::now();
  RHINO_CHECK_OK(driver.TriggerHandover(kOp, /*origin=*/0, /*target=*/1,
                                        moved));
  double handover_s = Seconds(t0, Clock::now());
  table.AddRow({"handover", std::to_string(handover_s) + " s",
                std::to_string(moved.size()) + " vnodes node0 -> node1"});
  artifact->Set("wall_s.handover", handover_s);
  artifact->Set("vnodes.moved", static_cast<double>(moved.size()));

  // More waves past the checkpoint: this is the window recovery replays.
  for (int w = 0; w < waves_after_ckpt; ++w) produce_wave();
  RHINO_CHECK_OK(driver.Pump().status());

  // Phase 4: fail-stop node 2 and recover. Stopping its RPC server models
  // the crash (connections refused); the replica its ring predecessor
  // holds is promoted, cursors rewind, and the replay pump re-delivers
  // the post-checkpoint window (survivors dedup it).
  servers[kFailedNode]->Stop();
  t0 = Clock::now();
  std::vector<uint32_t> dead = driver.ProbeFailures();
  RHINO_CHECK(dead == std::vector<uint32_t>{kFailedNode});
  RHINO_CHECK_OK(driver.RecoverNode(kFailedNode));
  auto replay = driver.Pump();
  RHINO_CHECK_OK(replay.status());
  double recovery_s = Seconds(t0, Clock::now());
  table.AddRow({"recovery", std::to_string(recovery_s) + " s",
                "replayed " + std::to_string(replay->records_sent) +
                    " records (" + std::to_string(replay->deduped) +
                    " deduped)"});
  artifact->Set("wall_s.recovery", recovery_s);
  artifact->Set("records.replayed", static_cast<double>(replay->records_sent));

  // Phase 5: one wave through the re-routed cluster, then the audit.
  produce_wave();
  RHINO_CHECK_OK(driver.Pump().status());
  const uint64_t expected =
      static_cast<uint64_t>(waves_before_ckpt + waves_after_ckpt) + 1;
  uint64_t lost = 0, duplicated = 0;
  for (uint64_t key = 0; key < keys; ++key) {
    auto count = driver.QueryCount(kOp, key);
    RHINO_CHECK_OK(count.status());
    if (*count < expected) lost += expected - *count;
    if (*count > expected) duplicated += *count - expected;
  }
  artifact->Set("records.lost", static_cast<double>(lost));
  artifact->Set("records.duplicated", static_cast<double>(duplicated));
  artifact->Set("records.expected_per_key", static_cast<double>(expected));
  RHINO_CHECK(lost == 0) << lost << " records lost";
  RHINO_CHECK(duplicated == 0) << duplicated << " records duplicated";

  table.Print();
  std::printf("\nexactly-once verified: every key counted %llu times over "
              "real sockets, 0 records lost\n",
              static_cast<unsigned long long>(expected));

  artifact->Set("nodes", kNumNodes);
  artifact->SetInfo("transport", "tcp (loopback)");
  artifact->SetInfo("failed_node", std::to_string(kFailedNode));
  artifact->SetInfo("regression_gate", "none (wall-clock, host-dependent)");

  driver.Shutdown();
  for (auto& server : servers) server->Stop();
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

}  // namespace
}  // namespace rhino::net

int main() {
  std::printf("=== Networked runtime: checkpoint, handover, recovery ===\n\n");
  rhino::bench::BenchArtifact artifact("dist_handover");
  rhino::net::Run(&artifact);
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
