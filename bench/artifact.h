#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

/// \file artifact.h
/// Machine-readable benchmark artifacts: every bench binary records its
/// headline numbers as a flat map of dotted keys and writes them to
/// `BENCH_<name>.json` next to the human-readable tables it prints. CI
/// uploads the files and `bench/check_regression.py` diffs them against
/// the committed baselines in `bench/baselines/`.

namespace rhino::bench {

/// Accumulates `key -> number` results for one bench run.
///
/// Keys are dotted paths, most-significant dimension first, with units
/// spelled out in the leaf: `recovery_total_s.250GiB.Rhino`,
/// `latency_p99_ms.NBQ8.Flink`, `handover_bytes.NBQ8.Rhino`.
class BenchArtifact {
 public:
  explicit BenchArtifact(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& key, double value) { values_[key] = value; }

  /// Non-numeric context (query names, modes); kept out of `metrics` so
  /// the regression checker only ever compares numbers.
  void SetInfo(const std::string& key, std::string value) {
    info_[key] = std::move(value);
  }

  std::string ToJson() const;

  /// Writes `BENCH_<name>.json` into `$RHINO_BENCH_ARTIFACT_DIR` (falling
  /// back to the working directory) and logs the path. Call once, at the
  /// end of main, after all Set() calls.
  Status Write() const;

  const std::string& name() const { return name_; }
  const std::map<std::string, double>& values() const { return values_; }

 private:
  std::string name_;
  std::map<std::string, double> values_;
  std::map<std::string, std::string> info_;
};

/// True when `RHINO_BENCH_SMOKE` is set (and not "0"): benches shrink
/// their sweeps (fewer sizes/SUTs, shorter simulated runs) so the whole
/// suite finishes in CI-smoke time while still emitting every key class.
bool SmokeMode();

/// Picks the full-scale or smoke-scale value of a bench parameter.
template <typename T>
T SmokeScaled(T full, T smoke) {
  return SmokeMode() ? smoke : full;
}

}  // namespace rhino::bench
