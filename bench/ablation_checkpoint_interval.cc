// Ablation of the checkpoint interval (DESIGN.md §4, paper §5.6): the
// interval trades replication overhead against the incremental tail a
// handover must ship. Sweeps fixed intervals on NBQ8 and then runs the
// adaptive scheduler (the paper's future-work item), which converges to
// whatever interval keeps the delta near its byte target as the ingest
// rate varies.

#include <cmath>
#include <cstdio>

#include "artifact.h"
#include "common/logging.h"
#include "harness.h"
#include "metrics/table.h"
#include "rhino/adaptive_scheduler.h"

namespace rhino::bench {
namespace {

void FixedSweep(BenchArtifact* artifact) {
  std::printf("--- fixed interval sweep (NBQ8, 256 MB/s aggregate ingest) ---\n");
  metrics::TablePrinter table({"interval", "checkpoints", "mean delta/ckpt",
                               "bytes replicated", "LB tail moved"});
  std::vector<SimTime> intervals = {30 * kSecond, 60 * kSecond, 120 * kSecond,
                                    240 * kSecond};
  if (SmokeMode()) intervals = {30 * kSecond, 60 * kSecond};
  for (SimTime interval : intervals) {
    TestbedOptions opts;
    opts.sut = Sut::kRhino;
    opts.query = "NBQ8";
    opts.checkpoint_interval = interval;
    opts.gen_tick = kSecond;
    Testbed tb(opts);
    tb.SeedState(SmokeScaled<uint64_t>(32 * kGiB, 4 * kGiB));
    tb.Start();
    tb.Run(SmokeScaled(8 * kMinute, 2 * kMinute));

    // One load balance at the end, to *cross-node* targets: its
    // transferred bytes are the incremental tail accumulated since the
    // last checkpoint.
    tb.TriggerLoadBalance(4, 0.5);
    tb.Run(30 * kSecond);
    tb.StopGenerators();
    tb.Run(10 * kSecond);

    uint64_t completed = 0, delta = 0;
    for (const auto& record : tb.engine.checkpoints()) {
      if (!record.completed) continue;
      ++completed;
      for (const auto& [_, desc] : record.descriptors) {
        delta += desc.DeltaBytes();
      }
    }
    uint64_t tail = 0;
    for (const auto& record : tb.engine.handovers()) {
      const rhino::HandoverStats* stats = tb.hm->StatsFor(record.spec->id);
      if (stats != nullptr) tail += stats->bytes_transferred;
    }
    std::string ikey = std::to_string(interval / kSecond) + "s";
    artifact->Set("checkpoints." + ikey, static_cast<double>(completed));
    artifact->Set("bytes_replicated." + ikey,
                  static_cast<double>(tb.replication.bytes_replicated()));
    artifact->Set("lb_tail_bytes." + ikey, static_cast<double>(tail));
    table.AddRow({FormatDuration(interval), std::to_string(completed),
                  FormatBytes(completed ? delta / completed : 0),
                  FormatBytes(tb.replication.bytes_replicated()),
                  FormatBytes(tail)});
  }
  table.Print();
  std::printf(
      "\nlonger intervals replicate the same volume in burstier deltas and\n"
      "leave a larger tail for the next handover to ship.\n\n");
}

void Adaptive(BenchArtifact* artifact) {
  std::printf("--- adaptive scheduler (target 8 GiB delta/checkpoint) ---\n");
  TestbedOptions opts;
  opts.sut = Sut::kRhino;
  opts.query = "NBQ8";
  opts.gen_tick = kSecond;
  // Double the ingest mid-run: the scheduler must shorten its interval.
  opts.rate_factor = [](SimTime t) { return t < 8 * kMinute ? 1.0 : 2.0; };
  Testbed tb(opts);
  tb.SeedState(32 * kGiB);
  for (auto& gen : tb.generators) gen->Start();
  tb.graph->StartSources();
  tb.monitor->Start();

  rhino::AdaptiveSchedulerOptions sched_opts;
  sched_opts.target_delta_bytes = 8ull * kGiB;
  sched_opts.initial_interval = 2 * kMinute;
  rhino::AdaptiveCheckpointScheduler scheduler(&tb.engine, sched_opts);
  scheduler.Start();

  metrics::TablePrinter table({"t[s]", "interval", "last delta"});
  const int steps = SmokeScaled(16, 4);
  for (int step = 0; step < steps; ++step) {
    tb.Run(kMinute);
    char t[32];
    std::snprintf(t, sizeof(t), "%.0f", ToSeconds(tb.sim.Now()));
    table.AddRow({t, FormatDuration(scheduler.current_interval()),
                  FormatBytes(scheduler.last_delta_bytes())});
  }
  scheduler.Stop();
  tb.StopGenerators();
  table.Print();
  artifact->Set("adaptive_final_interval_s",
                ToSeconds(scheduler.current_interval()));
  artifact->Set("adaptive_last_delta_bytes",
                static_cast<double>(scheduler.last_delta_bytes()));
  std::printf(
      "\nthe interval shrinks after the rate doubles at t=480 s, holding the\n"
      "delta (and thus any handover tail) near the target.\n");
}

}  // namespace
}  // namespace rhino::bench

int main() {
  std::printf("=== Ablation: checkpoint interval & adaptive scheduling ===\n\n");
  rhino::bench::BenchArtifact artifact("ablation_checkpoint_interval");
  rhino::bench::FixedSweep(&artifact);
  rhino::bench::Adaptive(&artifact);
  RHINO_CHECK_OK(artifact.Write());
  return 0;
}
