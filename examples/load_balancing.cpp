// Load balancing (paper §3.5.1) at simulated scale: half the virtual
// nodes of the first instance on each worker move to under-loaded
// siblings while NBQ8 runs with ~32 GiB of state. Because the targets'
// workers hold the replicated checkpoints, only the incremental tail
// crosses the network and the latency impact is tens of milliseconds.

#include <cstdio>

#include "harness.h"
#include "timeline_util.h"

using namespace rhino::bench;  // NOLINT: example brevity
using rhino::kGiB;
using rhino::kMinute;
using rhino::kSecond;
using rhino::SimTime;
using rhino::FormatBytes;

int main() {
  std::printf("== Load balancing on NBQ8 (modeled, 32 GiB state) ==\n\n");

  TestbedOptions opts;
  opts.sut = Sut::kRhino;
  opts.query = "NBQ8";
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  Testbed tb(opts);
  tb.SeedState(32 * kGiB);
  tb.Start();
  tb.Run(2 * kMinute + 10 * kSecond);

  auto vnode_spread = [&] {
    size_t min_owned = ~0ull, max_owned = 0;
    for (auto* inst : tb.engine.stateful()) {
      min_owned = std::min(min_owned, inst->owned_vnodes().size());
      max_owned = std::max(max_owned, inst->owned_vnodes().size());
    }
    std::printf("vnodes per instance: min %zu, max %zu\n", min_owned, max_owned);
  };
  vnode_spread();

  SimTime rebalance_at = tb.sim.Now();
  tb.TriggerLoadBalance(opts.num_workers, 0.5);
  tb.Run(2 * kMinute);
  tb.StopGenerators();
  tb.Run(10 * kSecond);
  vnode_spread();
  std::printf("\n");

  PrintTimeline(tb, "nbq8-join", rebalance_at);

  uint64_t moved = 0;
  for (const auto& record : tb.engine.handovers()) {
    const rhino::rhino::HandoverStats* stats = tb.hm->StatsFor(record.spec->id);
    if (stats != nullptr) moved += stats->bytes_transferred;
  }
  std::printf("bytes moved over the network during rebalancing: %s\n",
              FormatBytes(moved).c_str());
  bool completed = !tb.engine.handovers().empty() &&
                   tb.engine.handovers().back().completed;
  std::printf("rebalancing handover completed: %s\n", completed ? "yes" : "no");
  return completed ? 0 : 1;
}
