// Quickstart: build a small stateful streaming pipeline on the Rhino
// library, run it, and reconfigure it on the fly with a handover.
//
//   broker("events") -> source x2 -> keyed counter x2 -> sink
//
// The pipeline runs in *real mode*: every record is materialized and the
// operator state lives in the embedded LSM store. After some traffic, the
// Handover Manager moves half of instance 0's virtual nodes to instance 1
// while the query keeps running — no restart, no lost or duplicated
// counts.

#include <cstdio>
#include <map>

#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/sim_executor.h"
#include "state/lsm_state_backend.h"

namespace sim = rhino::sim;
namespace runtime = rhino::runtime;
namespace broker = rhino::broker;
namespace lsm = rhino::lsm;
namespace state = rhino::state;
namespace core = rhino::rhino;  // the Rhino library proper
using namespace rhino::dataflow;  // NOLINT: example brevity

int main() {
  std::printf("== Rhino quickstart ==\n\n");

  // 1. A simulated 4-node cluster: node 0 hosts the broker, 1-3 are
  //    workers.
  runtime::SimExecutor sim;
  sim::Cluster cluster(&sim, 4);
  broker::Broker broker({0});
  broker.CreateTopic("events", 2);

  // 2. The engine (the host SPE) with small key-group/vnode settings.
  EngineOptions engine_opts;
  engine_opts.num_key_groups = 128;
  engine_opts.vnodes_per_instance = 4;
  Engine engine(&sim, &cluster, &broker, engine_opts);

  // 3. Rhino: replica groups, chain replication, handover manager.
  core::ReplicationManager rm({1, 2, 3}, /*replication_factor=*/1);
  core::ReplicationRuntime replication(&cluster, &rm);
  core::RhinoCheckpointStorage storage(&cluster, &replication);
  engine.SetCheckpointStorage(&storage);
  core::HandoverManager hm(&engine, &rm, &replication);

  // 4. The query: source -> keyed counter (LSM-backed state) -> sink.
  lsm::MemEnv env;
  QueryDef def;
  def.AddSource("src", "events", 2)
      .AddStateful("counter", 2, {"src"},
                   [&env](Engine* eng, int subtask, int node) {
                     auto backend = state::LsmStateBackend::Open(
                         &env, "/state/counter-" + std::to_string(subtask),
                         "counter", static_cast<uint32_t>(subtask));
                     RHINO_CHECK(backend.ok());
                     return std::make_unique<KeyedCounterOperator>(
                         eng, "counter", subtask, node, ProcessingProfile(),
                         std::move(backend).MoveValue());
                   })
      .AddSink("sink", 1, {"counter"});
  auto graph = ExecutionGraph::Build(&engine, def, {1, 2, 3});

  std::map<uint64_t, uint64_t> counts;
  graph->sinks("sink")[0]->SetCollector([&](const Record& r) {
    uint64_t c = std::stoull(r.payload);
    if (c > counts[r.key]) counts[r.key] = c;
  });

  rm.BuildGroups({{"counter", 0, 1, 1}, {"counter", 1, 2, 1}});
  graph->StartSources();

  // 5. Produce two waves of records with a reconfiguration in between.
  auto produce_wave = [&] {
    for (uint64_t key = 0; key < 16; ++key) {
      Batch batch;
      batch.create_time = sim.Now();
      batch.count = 1;
      batch.bytes = 8;
      batch.records.push_back(Record{key, sim.Now(), 8, "x"});
      broker.topic("events").partition(static_cast<int>(key % 2))
          .Append(std::move(batch));
    }
  };

  produce_wave();
  sim.Run();
  engine.TriggerCheckpoint();  // replicate state to the replica groups
  sim.Run();

  std::printf("before handover: instance 0 owns %zu vnodes, instance 1 owns %zu\n",
              graph->stateful("counter")[0]->owned_vnodes().size(),
              graph->stateful("counter")[1]->owned_vnodes().size());

  // 6. On-the-fly reconfiguration: move half of instance 0's virtual
  //    nodes to instance 1 while records keep flowing.
  hm.TriggerLoadBalance("counter", /*origin=*/0, /*target=*/1, 0.5);
  produce_wave();
  sim.Run();

  std::printf("after handover:  instance 0 owns %zu vnodes, instance 1 owns %zu\n",
              graph->stateful("counter")[0]->owned_vnodes().size(),
              graph->stateful("counter")[1]->owned_vnodes().size());
  std::printf("handover completed: %s\n",
              engine.handovers().back().completed ? "yes" : "no");

  // 7. Exactly-once check: every key was produced twice.
  bool ok = true;
  for (uint64_t key = 0; key < 16; ++key) ok = ok && counts[key] == 2;
  std::printf("every key counted exactly twice: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
