// Fault tolerance end to end (paper §3.5.3): a join pipeline with real
// LSM-backed state loses a worker VM mid-run; Rhino recovers it with a
// handover — the target instance restores the failed instance's virtual
// nodes from its local secondary copy, every source rewinds to the last
// checkpoint, and replay watermarks drop the duplicates at the surviving
// instances. The query never restarts, and no join output is lost.

#include <cstdio>
#include <set>

#include "broker/broker.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dataflow/sink.h"
#include "dataflow/stateful.h"
#include "lsm/env.h"
#include "rhino/checkpoint_storage.h"
#include "rhino/handover_manager.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"
#include "runtime/sim_executor.h"
#include "state/lsm_state_backend.h"

namespace sim = rhino::sim;
namespace runtime = rhino::runtime;
namespace broker = rhino::broker;
namespace lsm = rhino::lsm;
namespace state = rhino::state;
namespace core = rhino::rhino;  // the Rhino library proper
using namespace rhino::dataflow;  // NOLINT: example brevity

int main() {
  std::printf("== Fault-tolerant join pipeline ==\n\n");

  runtime::SimExecutor sim;
  sim::Cluster cluster(&sim, 5);  // node 0: broker; 1-4: workers
  broker::Broker broker({0});
  broker.CreateTopic("left", 2);
  broker.CreateTopic("right", 2);

  EngineOptions engine_opts;
  engine_opts.num_key_groups = 128;
  engine_opts.vnodes_per_instance = 2;
  Engine engine(&sim, &cluster, &broker, engine_opts);

  core::ReplicationManager rm({1, 2, 3, 4}, 1);
  core::ReplicationRuntime replication(&cluster, &rm);
  core::RhinoCheckpointStorage storage(&cluster, &replication);
  engine.SetCheckpointStorage(&storage);
  core::HandoverManager hm(&engine, &rm, &replication);

  lsm::MemEnv env;
  QueryDef def;
  def.AddSource("src_l", "left", 2)
      .AddSource("src_r", "right", 2)
      .AddStateful("join", 4, {"src_l", "src_r"},
                   [&env](Engine* eng, int subtask, int node) {
                     auto backend = state::LsmStateBackend::Open(
                         &env, "/state/join-" + std::to_string(subtask),
                         "join", static_cast<uint32_t>(subtask));
                     RHINO_CHECK(backend.ok());
                     return std::make_unique<SymmetricHashJoinOperator>(
                         eng, "join", subtask, node, ProcessingProfile(),
                         std::move(backend).MoveValue());
                   })
      .AddSink("sink", 1, {"join"});
  auto graph = ExecutionGraph::Build(&engine, def, {1, 2, 3, 4});

  std::multiset<std::string> results;
  graph->sinks("sink")[0]->SetCollector(
      [&](const Record& r) { results.insert(r.payload); });

  std::vector<core::InstanceInfo> infos;
  for (auto* inst : graph->stateful("join")) {
    infos.push_back({"join", static_cast<uint32_t>(inst->subtask()),
                     inst->node_id(), 1});
  }
  rm.BuildGroups(infos);
  graph->StartSources();

  auto produce = [&](const std::string& topic, uint64_t key,
                     const std::string& payload) {
    Batch b;
    b.create_time = sim.Now();
    b.count = 1;
    b.bytes = payload.size();
    b.records.push_back(Record{key, sim.Now(), 8, payload});
    broker.topic(topic).partition(static_cast<int>(key % 2)).Append(std::move(b));
  };

  // Build up join state, checkpoint (replicates to the replica groups).
  for (uint64_t key = 0; key < 32; ++key) {
    produce("left", key, "L" + std::to_string(key));
  }
  sim.Run();
  engine.TriggerCheckpoint();
  sim.Run();
  std::printf("checkpoint complete; %llu replica checkpoints shipped\n",
              static_cast<unsigned long long>(replication.checkpoints_replicated()));

  // More state AFTER the checkpoint — this is exactly the data that must
  // come back via upstream-backup replay.
  for (uint64_t key = 32; key < 48; ++key) {
    produce("left", key, "L" + std::to_string(key));
  }
  sim.Run();

  // Fail worker 1 (it runs src_l#0, src_r#0, join#0, the sink).
  std::printf("\nfailing worker 1...\n");
  engine.FailNode(1);
  auto handovers = hm.RecoverFailedNode(1);
  sim.Run();
  for (uint64_t id : handovers) {
    const core::HandoverStats* stats = hm.StatsFor(id);
    std::printf("recovery handover %llu: %d move(s), local fetch: %s, "
                "fetch %.2f s, load %.2f s\n",
                static_cast<unsigned long long>(id), stats->moves,
                stats->local_fetch ? "yes" : "no",
                rhino::ToSeconds(stats->state_fetch_us),
                rhino::ToSeconds(stats->state_load_us));
  }

  // Probe the (recovered) join state from the other side: every left
  // record — checkpointed or replayed — must match.
  for (uint64_t key = 0; key < 48; ++key) {
    produce("right", key, "R" + std::to_string(key));
  }
  sim.Run();

  bool ok = true;
  for (uint64_t key = 0; key < 48; ++key) {
    std::string expected = "L" + std::to_string(key) + "|R" + std::to_string(key);
    if (results.count(expected) != 1) {
      std::printf("MISSING OR DUPLICATED: %s (count %zu)\n", expected.c_str(),
                  results.count(expected));
      ok = false;
    }
  }
  std::printf("\nall 48 joins produced exactly once across the failure: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
