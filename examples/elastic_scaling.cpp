// Resource elasticity (paper §3.5.2) at simulated scale: the NBQ8 join
// runs with 1/8 of its instances idle ("spares"); a vertical-scaling
// handover moves a share of every active instance's virtual nodes onto
// the spares while ~64 GiB of operator state is live. Latency barely
// moves because the spares' workers already hold the replicated state.

#include <cstdio>

#include "harness.h"
#include "timeline_util.h"

using namespace rhino::bench;  // NOLINT: example brevity
using rhino::kGiB;
using rhino::kMinute;
using rhino::kSecond;
using rhino::SimTime;
using rhino::FormatBytes;

int main() {
  std::printf("== Elastic scaling on NBQ8 (modeled, 64 GiB state) ==\n\n");

  TestbedOptions opts;
  opts.sut = Sut::kRhino;
  opts.query = "NBQ8";
  opts.checkpoint_interval = kMinute;
  opts.gen_tick = kSecond;
  opts.spare_instances = opts.stateful_parallelism / 8;
  Testbed tb(opts);
  tb.SeedState(64 * kGiB);
  tb.Start();
  tb.Run(2 * kMinute + 10 * kSecond);

  int active_before = 0;
  for (auto* inst : tb.engine.stateful()) {
    if (!inst->owned_vnodes().empty()) ++active_before;
  }
  std::printf("instances with state before rescale: %d of %d\n", active_before,
              opts.stateful_parallelism);

  SimTime rescale_at = tb.sim.Now();
  tb.TriggerRescale(1.0 / 8.0);
  tb.Run(2 * kMinute);
  tb.StopGenerators();
  tb.Run(10 * kSecond);

  int active_after = 0;
  for (auto* inst : tb.engine.stateful()) {
    if (!inst->owned_vnodes().empty()) ++active_after;
  }
  std::printf("instances with state after rescale:  %d of %d\n\n", active_after,
              opts.stateful_parallelism);

  PrintTimeline(tb, "nbq8-join", rescale_at);

  bool completed = !tb.engine.handovers().empty() &&
                   tb.engine.handovers().back().completed;
  std::printf("rescale handover completed: %s\n", completed ? "yes" : "no");
  return completed && active_after > active_before ? 0 : 1;
}
