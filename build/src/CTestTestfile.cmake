# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("hashring")
subdirs("lsm")
subdirs("state")
subdirs("dataflow")
subdirs("broker")
subdirs("dfs")
subdirs("rhino")
subdirs("baselines")
subdirs("nexmark")
subdirs("metrics")
