# Empty compiler generated dependencies file for rhino_dataflow.
# This may be replaced when dependencies are built.
