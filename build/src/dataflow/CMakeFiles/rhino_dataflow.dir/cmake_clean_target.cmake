file(REMOVE_RECURSE
  "librhino_dataflow.a"
)
