file(REMOVE_RECURSE
  "CMakeFiles/rhino_dataflow.dir/engine.cc.o"
  "CMakeFiles/rhino_dataflow.dir/engine.cc.o.d"
  "CMakeFiles/rhino_dataflow.dir/graph.cc.o"
  "CMakeFiles/rhino_dataflow.dir/graph.cc.o.d"
  "CMakeFiles/rhino_dataflow.dir/operator.cc.o"
  "CMakeFiles/rhino_dataflow.dir/operator.cc.o.d"
  "CMakeFiles/rhino_dataflow.dir/source.cc.o"
  "CMakeFiles/rhino_dataflow.dir/source.cc.o.d"
  "CMakeFiles/rhino_dataflow.dir/stateful.cc.o"
  "CMakeFiles/rhino_dataflow.dir/stateful.cc.o.d"
  "librhino_dataflow.a"
  "librhino_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhino_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
