
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/engine.cc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/engine.cc.o" "gcc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/engine.cc.o.d"
  "/root/repo/src/dataflow/graph.cc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/graph.cc.o" "gcc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/graph.cc.o.d"
  "/root/repo/src/dataflow/operator.cc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/operator.cc.o" "gcc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/operator.cc.o.d"
  "/root/repo/src/dataflow/source.cc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/source.cc.o" "gcc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/source.cc.o.d"
  "/root/repo/src/dataflow/stateful.cc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/stateful.cc.o" "gcc" "src/dataflow/CMakeFiles/rhino_dataflow.dir/stateful.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rhino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/rhino_state.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/rhino_lsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
