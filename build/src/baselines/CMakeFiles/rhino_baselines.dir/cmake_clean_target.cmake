file(REMOVE_RECURSE
  "librhino_baselines.a"
)
