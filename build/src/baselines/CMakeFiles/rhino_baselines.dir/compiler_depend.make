# Empty compiler generated dependencies file for rhino_baselines.
# This may be replaced when dependencies are built.
