file(REMOVE_RECURSE
  "CMakeFiles/rhino_baselines.dir/flink_restart.cc.o"
  "CMakeFiles/rhino_baselines.dir/flink_restart.cc.o.d"
  "CMakeFiles/rhino_baselines.dir/megaphone.cc.o"
  "CMakeFiles/rhino_baselines.dir/megaphone.cc.o.d"
  "librhino_baselines.a"
  "librhino_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhino_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
