# Empty dependencies file for rhino_core.
# This may be replaced when dependencies are built.
