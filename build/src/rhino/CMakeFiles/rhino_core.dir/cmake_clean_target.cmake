file(REMOVE_RECURSE
  "librhino_core.a"
)
