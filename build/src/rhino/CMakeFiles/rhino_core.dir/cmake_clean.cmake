file(REMOVE_RECURSE
  "CMakeFiles/rhino_core.dir/checkpoint_storage.cc.o"
  "CMakeFiles/rhino_core.dir/checkpoint_storage.cc.o.d"
  "CMakeFiles/rhino_core.dir/handover_manager.cc.o"
  "CMakeFiles/rhino_core.dir/handover_manager.cc.o.d"
  "CMakeFiles/rhino_core.dir/replication_manager.cc.o"
  "CMakeFiles/rhino_core.dir/replication_manager.cc.o.d"
  "CMakeFiles/rhino_core.dir/replication_runtime.cc.o"
  "CMakeFiles/rhino_core.dir/replication_runtime.cc.o.d"
  "librhino_core.a"
  "librhino_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhino_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
