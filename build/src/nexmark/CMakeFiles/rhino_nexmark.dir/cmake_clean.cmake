file(REMOVE_RECURSE
  "CMakeFiles/rhino_nexmark.dir/nexmark.cc.o"
  "CMakeFiles/rhino_nexmark.dir/nexmark.cc.o.d"
  "librhino_nexmark.a"
  "librhino_nexmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhino_nexmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
