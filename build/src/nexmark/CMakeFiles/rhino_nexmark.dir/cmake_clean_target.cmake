file(REMOVE_RECURSE
  "librhino_nexmark.a"
)
