# Empty compiler generated dependencies file for rhino_nexmark.
# This may be replaced when dependencies are built.
