file(REMOVE_RECURSE
  "librhino_state.a"
)
