# Empty dependencies file for rhino_state.
# This may be replaced when dependencies are built.
