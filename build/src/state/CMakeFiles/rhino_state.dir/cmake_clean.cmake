file(REMOVE_RECURSE
  "CMakeFiles/rhino_state.dir/lsm_state_backend.cc.o"
  "CMakeFiles/rhino_state.dir/lsm_state_backend.cc.o.d"
  "CMakeFiles/rhino_state.dir/modeled_state_backend.cc.o"
  "CMakeFiles/rhino_state.dir/modeled_state_backend.cc.o.d"
  "librhino_state.a"
  "librhino_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhino_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
