file(REMOVE_RECURSE
  "CMakeFiles/rhino_common.dir/histogram.cc.o"
  "CMakeFiles/rhino_common.dir/histogram.cc.o.d"
  "CMakeFiles/rhino_common.dir/logging.cc.o"
  "CMakeFiles/rhino_common.dir/logging.cc.o.d"
  "CMakeFiles/rhino_common.dir/status.cc.o"
  "CMakeFiles/rhino_common.dir/status.cc.o.d"
  "CMakeFiles/rhino_common.dir/units.cc.o"
  "CMakeFiles/rhino_common.dir/units.cc.o.d"
  "librhino_common.a"
  "librhino_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhino_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
