file(REMOVE_RECURSE
  "librhino_common.a"
)
