# Empty dependencies file for rhino_common.
# This may be replaced when dependencies are built.
