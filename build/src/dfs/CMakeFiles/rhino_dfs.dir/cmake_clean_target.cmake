file(REMOVE_RECURSE
  "librhino_dfs.a"
)
