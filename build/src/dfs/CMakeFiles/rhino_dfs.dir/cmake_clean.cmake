file(REMOVE_RECURSE
  "CMakeFiles/rhino_dfs.dir/dfs.cc.o"
  "CMakeFiles/rhino_dfs.dir/dfs.cc.o.d"
  "librhino_dfs.a"
  "librhino_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhino_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
