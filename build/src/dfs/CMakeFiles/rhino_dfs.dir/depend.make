# Empty dependencies file for rhino_dfs.
# This may be replaced when dependencies are built.
