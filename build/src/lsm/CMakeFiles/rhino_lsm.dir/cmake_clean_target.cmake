file(REMOVE_RECURSE
  "librhino_lsm.a"
)
