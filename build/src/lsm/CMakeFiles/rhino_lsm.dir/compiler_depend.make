# Empty compiler generated dependencies file for rhino_lsm.
# This may be replaced when dependencies are built.
