file(REMOVE_RECURSE
  "CMakeFiles/rhino_lsm.dir/bloom.cc.o"
  "CMakeFiles/rhino_lsm.dir/bloom.cc.o.d"
  "CMakeFiles/rhino_lsm.dir/db.cc.o"
  "CMakeFiles/rhino_lsm.dir/db.cc.o.d"
  "CMakeFiles/rhino_lsm.dir/env.cc.o"
  "CMakeFiles/rhino_lsm.dir/env.cc.o.d"
  "CMakeFiles/rhino_lsm.dir/memtable.cc.o"
  "CMakeFiles/rhino_lsm.dir/memtable.cc.o.d"
  "CMakeFiles/rhino_lsm.dir/sstable.cc.o"
  "CMakeFiles/rhino_lsm.dir/sstable.cc.o.d"
  "CMakeFiles/rhino_lsm.dir/version.cc.o"
  "CMakeFiles/rhino_lsm.dir/version.cc.o.d"
  "librhino_lsm.a"
  "librhino_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhino_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
