file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_pipeline.dir/fault_tolerant_pipeline.cpp.o"
  "CMakeFiles/fault_tolerant_pipeline.dir/fault_tolerant_pipeline.cpp.o.d"
  "fault_tolerant_pipeline"
  "fault_tolerant_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
