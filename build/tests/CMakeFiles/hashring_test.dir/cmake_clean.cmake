file(REMOVE_RECURSE
  "CMakeFiles/hashring_test.dir/hashring_test.cc.o"
  "CMakeFiles/hashring_test.dir/hashring_test.cc.o.d"
  "hashring_test"
  "hashring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
