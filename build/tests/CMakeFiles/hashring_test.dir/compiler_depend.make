# Empty compiler generated dependencies file for hashring_test.
# This may be replaced when dependencies are built.
