# Empty compiler generated dependencies file for rhino_test.
# This may be replaced when dependencies are built.
