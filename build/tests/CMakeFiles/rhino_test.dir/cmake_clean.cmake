file(REMOVE_RECURSE
  "CMakeFiles/rhino_test.dir/rhino_test.cc.o"
  "CMakeFiles/rhino_test.dir/rhino_test.cc.o.d"
  "rhino_test"
  "rhino_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhino_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
