# Empty dependencies file for handover_property_test.
# This may be replaced when dependencies are built.
