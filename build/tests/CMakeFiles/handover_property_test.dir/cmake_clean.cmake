file(REMOVE_RECURSE
  "CMakeFiles/handover_property_test.dir/handover_property_test.cc.o"
  "CMakeFiles/handover_property_test.dir/handover_property_test.cc.o.d"
  "handover_property_test"
  "handover_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handover_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
