# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hashring_test "/root/repo/build/tests/hashring_test")
set_tests_properties(hashring_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lsm_test "/root/repo/build/tests/lsm_test")
set_tests_properties(lsm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dataflow_test "/root/repo/build/tests/dataflow_test")
set_tests_properties(dataflow_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(state_test "/root/repo/build/tests/state_test")
set_tests_properties(state_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;25;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(broker_test "/root/repo/build/tests/broker_test")
set_tests_properties(broker_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;28;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dfs_test "/root/repo/build/tests/dfs_test")
set_tests_properties(dfs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;31;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rhino_test "/root/repo/build/tests/rhino_test")
set_tests_properties(rhino_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;34;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nexmark_test "/root/repo/build/tests/nexmark_test")
set_tests_properties(nexmark_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;37;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(metrics_test "/root/repo/build/tests/metrics_test")
set_tests_properties(metrics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;40;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;43;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;46;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(handover_property_test "/root/repo/build/tests/handover_property_test")
set_tests_properties(handover_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;50;rhino_add_test;/root/repo/tests/CMakeLists.txt;0;")
