file(REMOVE_RECURSE
  "CMakeFiles/fig1_reconfiguration_time.dir/fig1_reconfiguration_time.cc.o"
  "CMakeFiles/fig1_reconfiguration_time.dir/fig1_reconfiguration_time.cc.o.d"
  "fig1_reconfiguration_time"
  "fig1_reconfiguration_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_reconfiguration_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
