file(REMOVE_RECURSE
  "CMakeFiles/fig6_varying_rates.dir/fig6_varying_rates.cc.o"
  "CMakeFiles/fig6_varying_rates.dir/fig6_varying_rates.cc.o.d"
  "fig6_varying_rates"
  "fig6_varying_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_varying_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
