# Empty compiler generated dependencies file for fig6_varying_rates.
# This may be replaced when dependencies are built.
