file(REMOVE_RECURSE
  "CMakeFiles/fig4_vertical_scaling.dir/fig4_vertical_scaling.cc.o"
  "CMakeFiles/fig4_vertical_scaling.dir/fig4_vertical_scaling.cc.o.d"
  "fig4_vertical_scaling"
  "fig4_vertical_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vertical_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
