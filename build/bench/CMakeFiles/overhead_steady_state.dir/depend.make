# Empty dependencies file for overhead_steady_state.
# This may be replaced when dependencies are built.
