file(REMOVE_RECURSE
  "CMakeFiles/overhead_steady_state.dir/overhead_steady_state.cc.o"
  "CMakeFiles/overhead_steady_state.dir/overhead_steady_state.cc.o.d"
  "overhead_steady_state"
  "overhead_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
