# Empty compiler generated dependencies file for tab1_recovery_breakdown.
# This may be replaced when dependencies are built.
