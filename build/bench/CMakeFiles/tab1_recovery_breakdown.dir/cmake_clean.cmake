file(REMOVE_RECURSE
  "CMakeFiles/tab1_recovery_breakdown.dir/tab1_recovery_breakdown.cc.o"
  "CMakeFiles/tab1_recovery_breakdown.dir/tab1_recovery_breakdown.cc.o.d"
  "tab1_recovery_breakdown"
  "tab1_recovery_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_recovery_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
