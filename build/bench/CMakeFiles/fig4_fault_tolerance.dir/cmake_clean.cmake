file(REMOVE_RECURSE
  "CMakeFiles/fig4_fault_tolerance.dir/fig4_fault_tolerance.cc.o"
  "CMakeFiles/fig4_fault_tolerance.dir/fig4_fault_tolerance.cc.o.d"
  "fig4_fault_tolerance"
  "fig4_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
