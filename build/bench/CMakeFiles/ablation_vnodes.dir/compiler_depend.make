# Empty compiler generated dependencies file for ablation_vnodes.
# This may be replaced when dependencies are built.
