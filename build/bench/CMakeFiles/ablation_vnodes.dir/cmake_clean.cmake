file(REMOVE_RECURSE
  "CMakeFiles/ablation_vnodes.dir/ablation_vnodes.cc.o"
  "CMakeFiles/ablation_vnodes.dir/ablation_vnodes.cc.o.d"
  "ablation_vnodes"
  "ablation_vnodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vnodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
