
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_vnodes.cc" "bench/CMakeFiles/ablation_vnodes.dir/ablation_vnodes.cc.o" "gcc" "bench/CMakeFiles/ablation_vnodes.dir/ablation_vnodes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rhino_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rhino/CMakeFiles/rhino_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nexmark/CMakeFiles/rhino_nexmark.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/rhino_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/rhino_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/rhino_state.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/rhino_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rhino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
